//! Synaptic weight stages connecting spiking layers.
//!
//! A [`Synapse`] turns the presynaptic layer's spike-magnitude vector into
//! per-neuron post-synaptic potentials (PSPs). Propagation exploits spike
//! sparsity: only nonzero input entries contribute, so the cost per time
//! step scales with the number of spikes rather than the layer size —
//! exactly the event-driven advantage the paper's energy argument rests
//! on.

use crate::SnnError;
use bsnn_tensor::conv::Conv2dGeometry;
use bsnn_tensor::Tensor;

/// Spatial shape of a conv/pool stage in CHW order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chw {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Chw {
    /// A shape from its components.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Chw { c, h, w }
    }

    /// Flat neuron count.
    pub fn volume(&self) -> usize {
        self.c * self.h * self.w
    }
}

/// A weighted connection pattern from one layer's spikes to the next
/// layer's PSPs.
#[derive(Debug, Clone)]
pub enum Synapse {
    /// Fully connected: `weight` is `(in, out)` row-major.
    Dense {
        /// Weight matrix `(in, out)`.
        weight: Tensor,
    },
    /// 2-D convolution with weights `(c_out, c_in, kh, kw)`.
    Conv {
        /// Kernel tensor.
        weight: Tensor,
        /// Window geometry.
        geom: Conv2dGeometry,
        /// Input shape.
        in_shape: Chw,
        /// Output shape.
        out_shape: Chw,
    },
    /// Average pooling: depthwise uniform kernel `scale / (kh·kw)`.
    Pool {
        /// Window geometry.
        geom: Conv2dGeometry,
        /// Input shape.
        in_shape: Chw,
        /// Output shape.
        out_shape: Chw,
        /// Normalization rescale folded into the pool weights
        /// (`λ_prev / λ_this`).
        scale: f32,
    },
}

impl Synapse {
    /// Number of presynaptic neurons this synapse reads.
    pub fn input_len(&self) -> usize {
        match self {
            Synapse::Dense { weight } => weight.shape()[0],
            Synapse::Conv { in_shape, .. } => in_shape.volume(),
            Synapse::Pool { in_shape, .. } => in_shape.volume(),
        }
    }

    /// Number of postsynaptic neurons this synapse drives.
    pub fn output_len(&self) -> usize {
        match self {
            Synapse::Dense { weight } => weight.shape()[1],
            Synapse::Conv { out_shape, .. } => out_shape.volume(),
            Synapse::Pool { out_shape, .. } => out_shape.volume(),
        }
    }

    /// Accumulates `input`'s contribution into `psp` (`psp += W·input`).
    ///
    /// `psp` must have length [`Self::output_len`]; `input` length
    /// [`Self::input_len`]. Zero entries of `input` are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InputSizeMismatch`] on length mismatches.
    pub fn accumulate(&self, input: &[f32], psp: &mut [f32]) -> Result<(), SnnError> {
        if input.len() != self.input_len() {
            return Err(SnnError::InputSizeMismatch {
                expected: self.input_len(),
                actual: input.len(),
            });
        }
        if psp.len() != self.output_len() {
            return Err(SnnError::InputSizeMismatch {
                expected: self.output_len(),
                actual: psp.len(),
            });
        }
        match self {
            Synapse::Dense { weight } => {
                let out = weight.shape()[1];
                let w = weight.as_slice();
                for (i, &s) in input.iter().enumerate() {
                    if s == 0.0 {
                        continue;
                    }
                    let row = &w[i * out..(i + 1) * out];
                    for (p, &wij) in psp.iter_mut().zip(row) {
                        *p += s * wij;
                    }
                }
            }
            Synapse::Conv {
                weight,
                geom,
                in_shape,
                out_shape,
            } => {
                let (c_out, c_in) = (weight.shape()[0], weight.shape()[1]);
                debug_assert_eq!(c_in, in_shape.c);
                let (kh, kw) = (geom.kernel_h, geom.kernel_w);
                let w = weight.as_slice();
                let (ih, iw) = (in_shape.h, in_shape.w);
                let (oh, ow) = (out_shape.h, out_shape.w);
                for ci in 0..c_in {
                    for iy in 0..ih {
                        for ix in 0..iw {
                            let s = input[(ci * ih + iy) * iw + ix];
                            if s == 0.0 {
                                continue;
                            }
                            // Output rows touched by this input pixel:
                            // oy·stride + ky − pad = iy.
                            for ky in 0..kh {
                                let num_y = iy + geom.pad_h;
                                if num_y < ky {
                                    continue;
                                }
                                let dy = num_y - ky;
                                if dy % geom.stride_h != 0 {
                                    continue;
                                }
                                let oy = dy / geom.stride_h;
                                if oy >= oh {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let num_x = ix + geom.pad_w;
                                    if num_x < kx {
                                        continue;
                                    }
                                    let dx = num_x - kx;
                                    if dx % geom.stride_w != 0 {
                                        continue;
                                    }
                                    let ox = dx / geom.stride_w;
                                    if ox >= ow {
                                        continue;
                                    }
                                    for co in 0..c_out {
                                        let wv = w[((co * c_in + ci) * kh + ky) * kw + kx];
                                        psp[(co * oh + oy) * ow + ox] += s * wv;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Synapse::Pool {
                geom,
                in_shape,
                out_shape,
                scale,
            } => {
                let (kh, kw) = (geom.kernel_h, geom.kernel_w);
                let unit = *scale / (kh * kw) as f32;
                let (ih, iw) = (in_shape.h, in_shape.w);
                let (oh, ow) = (out_shape.h, out_shape.w);
                for ci in 0..in_shape.c {
                    for iy in 0..ih {
                        for ix in 0..iw {
                            let s = input[(ci * ih + iy) * iw + ix];
                            if s == 0.0 {
                                continue;
                            }
                            for ky in 0..kh {
                                let num_y = iy + geom.pad_h;
                                if num_y < ky {
                                    continue;
                                }
                                let dy = num_y - ky;
                                if dy % geom.stride_h != 0 {
                                    continue;
                                }
                                let oy = dy / geom.stride_h;
                                if oy >= oh {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let num_x = ix + geom.pad_w;
                                    if num_x < kx {
                                        continue;
                                    }
                                    let dx = num_x - kx;
                                    if dx % geom.stride_w != 0 {
                                        continue;
                                    }
                                    let ox = dx / geom.stride_w;
                                    if ox >= ow {
                                        continue;
                                    }
                                    psp[(ci * oh + oy) * ow + ox] += s * unit;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsnn_tensor::conv::conv2d;
    use bsnn_tensor::init::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_matches_matvec() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let syn = Synapse::Dense { weight };
        let mut psp = vec![0.0; 3];
        syn.accumulate(&[1.0, 0.5], &mut psp).unwrap();
        // x^T W = [1*1+0.5*4, 1*2+0.5*5, 1*3+0.5*6]
        assert_eq!(psp, vec![3.0, 4.5, 6.0]);
    }

    #[test]
    fn dense_skips_zero_inputs() {
        let weight = Tensor::from_vec(vec![f32::NAN, 1.0], &[2, 1]).unwrap();
        let syn = Synapse::Dense { weight };
        let mut psp = vec![0.0; 1];
        // zero magnitude on the NaN row must not pollute the PSP
        syn.accumulate(&[0.0, 2.0], &mut psp).unwrap();
        assert_eq!(psp, vec![2.0]);
    }

    #[test]
    fn conv_scatter_matches_dense_conv2d() {
        let mut rng = StdRng::seed_from_u64(3);
        let geom = Conv2dGeometry::square(3, 1, 1);
        let weight = uniform(&mut rng, &[4, 2, 3, 3], -1.0, 1.0);
        let input = uniform(&mut rng, &[1, 2, 5, 5], 0.0, 1.0);
        let reference = conv2d(&input, &weight, None, &geom).unwrap();

        let syn = Synapse::Conv {
            weight,
            geom,
            in_shape: Chw::new(2, 5, 5),
            out_shape: Chw::new(4, 5, 5),
        };
        let mut psp = vec![0.0f32; 4 * 5 * 5];
        syn.accumulate(input.as_slice(), &mut psp).unwrap();
        for (a, b) in psp.iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_scatter_matches_dense_conv2d_stride2() {
        let mut rng = StdRng::seed_from_u64(5);
        let geom = Conv2dGeometry::square(2, 2, 0);
        let weight = uniform(&mut rng, &[3, 1, 2, 2], -1.0, 1.0);
        let input = uniform(&mut rng, &[1, 1, 6, 6], 0.0, 1.0);
        let reference = conv2d(&input, &weight, None, &geom).unwrap();

        let syn = Synapse::Conv {
            weight,
            geom,
            in_shape: Chw::new(1, 6, 6),
            out_shape: Chw::new(3, 3, 3),
        };
        let mut psp = vec![0.0f32; 3 * 3 * 3];
        syn.accumulate(input.as_slice(), &mut psp).unwrap();
        for (a, b) in psp.iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn pool_averages_windows() {
        let geom = Conv2dGeometry::square(2, 2, 0);
        let syn = Synapse::Pool {
            geom,
            in_shape: Chw::new(1, 2, 2),
            out_shape: Chw::new(1, 1, 1),
            scale: 1.0,
        };
        let mut psp = vec![0.0f32; 1];
        syn.accumulate(&[1.0, 2.0, 3.0, 4.0], &mut psp).unwrap();
        assert!((psp[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn pool_scale_multiplies() {
        let geom = Conv2dGeometry::square(2, 2, 0);
        let syn = Synapse::Pool {
            geom,
            in_shape: Chw::new(1, 2, 2),
            out_shape: Chw::new(1, 1, 1),
            scale: 2.0,
        };
        let mut psp = vec![0.0f32; 1];
        syn.accumulate(&[1.0, 1.0, 1.0, 1.0], &mut psp).unwrap();
        assert!((psp[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn accumulate_is_additive() {
        let weight = Tensor::from_vec(vec![1.0, 1.0], &[2, 1]).unwrap();
        let syn = Synapse::Dense { weight };
        let mut psp = vec![5.0f32];
        syn.accumulate(&[1.0, 1.0], &mut psp).unwrap();
        assert_eq!(psp, vec![7.0]);
    }

    #[test]
    fn rejects_wrong_lengths() {
        let weight = Tensor::zeros(&[2, 3]);
        let syn = Synapse::Dense { weight };
        let mut psp = vec![0.0f32; 3];
        assert!(syn.accumulate(&[0.0; 3], &mut psp).is_err());
        let mut short = vec![0.0f32; 2];
        assert!(syn.accumulate(&[0.0; 2], &mut short).is_err());
    }

    #[test]
    fn lens_report_shapes() {
        let syn = Synapse::Dense {
            weight: Tensor::zeros(&[4, 7]),
        };
        assert_eq!(syn.input_len(), 4);
        assert_eq!(syn.output_len(), 7);
    }
}
