//! The converted spiking network: a chain of [`SpikingLayer`] stages plus
//! a non-spiking output accumulator.

use crate::layer::SpikingLayer;
use crate::recorder::SpikeRecord;
use crate::synapse::Synapse;
use crate::SnnError;

/// A feed-forward spiking network produced by [`crate::convert::convert`].
///
/// Layer 0 (the input layer) is virtual: its spikes come from an
/// [`crate::InputEncoder`] driven by the simulator. The hidden stages are
/// [`SpikingLayer`]s; the output stage integrates PSPs into membrane
/// potentials without ever firing (standard practice — class scores are
/// the accumulated potentials).
#[derive(Debug, Clone)]
pub struct SpikingNetwork {
    input_len: usize,
    layers: Vec<SpikingLayer>,
    output_synapse: Synapse,
    output_bias: Option<Vec<f32>>,
    output_vmem: Vec<f32>,
    /// Scratch buffer holding the current layer input.
    scratch: Vec<f32>,
    /// Scratch buffer for the output stage's per-step PSP (preallocated
    /// so stepping never allocates).
    output_psp: Vec<f32>,
}

impl SpikingNetwork {
    /// Assembles a network from converted stages.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when consecutive stage sizes
    /// disagree or when the output bias length is wrong.
    pub fn new(
        input_len: usize,
        layers: Vec<SpikingLayer>,
        output_synapse: Synapse,
        output_bias: Option<Vec<f32>>,
    ) -> Result<Self, SnnError> {
        let mut prev = input_len;
        for (i, l) in layers.iter().enumerate() {
            if l.input_len() != prev {
                return Err(SnnError::InvalidConfig(format!(
                    "stage {i} expects {} inputs but receives {prev}",
                    l.input_len()
                )));
            }
            prev = l.len();
        }
        if output_synapse.input_len() != prev {
            return Err(SnnError::InvalidConfig(format!(
                "output stage expects {} inputs but receives {prev}",
                output_synapse.input_len()
            )));
        }
        let out_len = output_synapse.output_len();
        if let Some(b) = &output_bias {
            if b.len() != out_len {
                return Err(SnnError::InvalidConfig(format!(
                    "output bias length {} does not match {out_len} classes",
                    b.len()
                )));
            }
        }
        Ok(SpikingNetwork {
            input_len,
            layers,
            output_synapse,
            output_bias,
            output_vmem: vec![0.0; out_len],
            scratch: Vec::new(),
            output_psp: vec![0.0; out_len],
        })
    }

    /// Number of input neurons (pixels).
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Number of output classes.
    pub fn output_len(&self) -> usize {
        self.output_vmem.len()
    }

    /// The hidden spiking stages.
    pub fn layers(&self) -> &[SpikingLayer] {
        &self.layers
    }

    /// Mutable access to the hidden stages (e.g. to set reset modes).
    pub fn layers_mut(&mut self) -> &mut [SpikingLayer] {
        &mut self.layers
    }

    /// The output stage's synaptic weights.
    pub fn output_synapse(&self) -> &Synapse {
        &self.output_synapse
    }

    /// The output stage's bias currents, if any.
    pub fn output_bias(&self) -> Option<&[f32]> {
        self.output_bias.as_deref()
    }

    /// Total neuron count: input + hidden + output (the paper's
    /// "# of neurons" column counts all of them).
    pub fn num_neurons(&self) -> usize {
        self.input_len + self.layers.iter().map(|l| l.len()).sum::<usize>() + self.output_len()
    }

    /// Sizes of all spike-emitting layers: the input layer followed by
    /// every hidden stage (the output accumulator never spikes).
    pub fn spiking_layer_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(1 + self.layers.len());
        sizes.push(self.input_len);
        sizes.extend(self.layers.iter().map(|l| l.len()));
        sizes
    }

    /// Clears all dynamic state in place for a new image presentation:
    /// membrane potentials, burst functions `g`, PSP caches, and the
    /// output accumulator. No layer buffer is reallocated — the network
    /// can be reused across an unbounded stream of requests without
    /// per-request allocation, which is what the serving runtime's worker
    /// pool relies on. After `reset_state()` the network behaves exactly
    /// like a fresh clone of its pristine self.
    pub fn reset_state(&mut self) {
        for l in &mut self.layers {
            l.reset();
        }
        self.output_vmem.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Alias of [`reset_state`](Self::reset_state), kept for the original
    /// API.
    pub fn reset(&mut self) {
        self.reset_state();
    }

    /// Advances the whole network one time step.
    ///
    /// `input` is the input layer's spike-magnitude (or analog) buffer for
    /// this step. Hidden-layer spikes are observed into `record` at layer
    /// indices `1..` (index 0 is reserved for the input layer, which the
    /// simulator records from the encoder).
    ///
    /// # Errors
    ///
    /// Returns size-mismatch errors if `input` has the wrong length.
    pub fn step(
        &mut self,
        input: &[f32],
        t: u64,
        record: &mut SpikeRecord,
    ) -> Result<(), SnnError> {
        self.step_with_token(input, t, record, None)
    }

    /// Advances the whole network one time step with an input-generation
    /// token forwarded to the first stage's PSP cache (see
    /// [`SpikingLayer::step_with_token`]). Drivers with a constant analog
    /// input (real coding) pass an unchanged `Some(token)` every step to
    /// skip recomputing the first stage's PSP without any buffer compare.
    ///
    /// # Errors
    ///
    /// Returns size-mismatch errors if `input` has the wrong length.
    pub fn step_with_token(
        &mut self,
        input: &[f32],
        t: u64,
        record: &mut SpikeRecord,
        input_token: Option<u64>,
    ) -> Result<(), SnnError> {
        if input.len() != self.input_len {
            return Err(SnnError::InputSizeMismatch {
                expected: self.input_len,
                actual: input.len(),
            });
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(input);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let token = if i == 0 { input_token } else { None };
            let out = layer.step_with_token(&self.scratch, t, token)?;
            record.observe_layer(i + 1, t, out);
            self.scratch.clear();
            self.scratch.extend_from_slice(out);
        }
        // Output accumulator: integrate, never fire.
        self.output_psp.iter_mut().for_each(|p| *p = 0.0);
        self.output_synapse
            .accumulate(&self.scratch, &mut self.output_psp)?;
        for (v, p) in self.output_vmem.iter_mut().zip(&self.output_psp) {
            *v += p;
        }
        if let Some(b) = &self.output_bias {
            for (v, bb) in self.output_vmem.iter_mut().zip(b) {
                *v += bb;
            }
        }
        Ok(())
    }

    /// The output accumulator's membrane potentials (class scores).
    pub fn output_potentials(&self) -> &[f32] {
        &self.output_vmem
    }

    /// Argmax over the output potentials.
    pub fn prediction(&self) -> usize {
        argmax_last(self.output_vmem.iter().copied())
    }
}

/// Argmax with the exact tie-breaking of the scalar inference path
/// (`Iterator::max_by`: the *last* maximum wins; incomparable values
/// count as equal). Shared with the batched engine so per-lane
/// predictions are bit-for-bit identical.
pub(crate) fn argmax_last(values: impl Iterator<Item = f32>) -> usize {
    values
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Gap between the top and runner-up values (`f32::INFINITY` for fewer
/// than two values) — the raw confidence margin, shared between the
/// scalar and batched inference paths.
pub(crate) fn top2_margin(values: impl Iterator<Item = f32>) -> f32 {
    let mut top = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for v in values {
        if v > top {
            second = top;
            top = v;
        } else if v > second {
            second = v;
        }
    }
    if second == f32::NEG_INFINITY {
        f32::INFINITY
    } else {
        top - second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ThresholdPolicy;
    use crate::recorder::RecordLevel;
    use bsnn_tensor::Tensor;

    fn identity_synapse(n: usize) -> Synapse {
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 1.0;
        }
        Synapse::Dense {
            weight: Tensor::from_vec(w, &[n, n]).unwrap(),
        }
    }

    fn tiny_network() -> SpikingNetwork {
        let hidden = SpikingLayer::new(
            identity_synapse(2),
            None,
            ThresholdPolicy::Fixed { vth: 0.5 },
        )
        .unwrap();
        SpikingNetwork::new(2, vec![hidden], identity_synapse(2), None).unwrap()
    }

    #[test]
    fn step_accumulates_output_potentials() {
        let mut net = tiny_network();
        let mut rec = SpikeRecord::new(&net.spiking_layer_sizes(), RecordLevel::Counts);
        for t in 0..10 {
            net.step(&[1.0, 0.0], t, &mut rec).unwrap();
            rec.end_step();
        }
        // neuron 0 fires 0.5-magnitude spikes every step (drive 1.0,
        // vth 0.5): hmm — drive 1.0, one spike of 0.5 per step, membrane
        // grows. Output accumulates those 0.5 spikes.
        assert!(net.output_potentials()[0] > 0.0);
        assert_eq!(net.output_potentials()[1], 0.0);
        assert_eq!(net.prediction(), 0);
        assert!(rec.layer_counts()[1] > 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut net = tiny_network();
        let mut rec = SpikeRecord::new(&net.spiking_layer_sizes(), RecordLevel::Counts);
        net.step(&[1.0, 1.0], 0, &mut rec).unwrap();
        net.reset();
        assert!(net.output_potentials().iter().all(|&v| v == 0.0));
        assert!(net.layers()[0].potentials().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn num_neurons_counts_all_layers() {
        let net = tiny_network();
        assert_eq!(net.num_neurons(), 2 + 2 + 2);
        assert_eq!(net.spiking_layer_sizes(), vec![2, 2]);
    }

    #[test]
    fn rejects_mismatched_stages() {
        let hidden = SpikingLayer::new(
            identity_synapse(2),
            None,
            ThresholdPolicy::Fixed { vth: 0.5 },
        )
        .unwrap();
        // input_len 3 but stage expects 2
        assert!(SpikingNetwork::new(3, vec![hidden], identity_synapse(2), None).is_err());
    }

    #[test]
    fn rejects_wrong_input_length_at_step() {
        let mut net = tiny_network();
        let mut rec = SpikeRecord::new(&net.spiking_layer_sizes(), RecordLevel::Counts);
        assert!(net.step(&[1.0], 0, &mut rec).is_err());
    }
}
