//! Batched lockstep inference: step B images through one network
//! simultaneously, with all dynamic state held in structure-of-arrays,
//! batch-innermost layout (`[neuron][batch]`).
//!
//! ## Why lockstep
//!
//! The serving runtime's micro-batching (PR 2) amortizes queue
//! synchronization but still runs each request's simulation alone, so
//! the hot scatter loops in [`Synapse`] stay scalar. A lockstep batch
//! makes the *innermost* dimension of every kernel the contiguous batch
//! axis: LLVM auto-vectorizes the lane loop (no `unsafe`, no
//! intrinsics) and every synaptic weight is loaded once per batch
//! instead of once per image. The trade is sparsity: an input neuron is
//! skipped only when it is silent in *every* lane. Measured on the
//! synthetic-digit conv network this trade wins >2.5× at batch 16 (see
//! the `batched_sim` bench).
//!
//! ## Lane semantics
//!
//! Lanes never interact: per-lane results are bit-identical to running
//! each image alone through [`crate::StepwiseInference`] (pinned by the
//! `batched_equivalence` test suite across all threshold policies, both
//! reset modes, and batch sizes {1, 2, 7, 16}). A lane can *retire*
//! mid-run (anytime early exit): its outputs are snapshotted, its
//! column is compacted out of the SoA state, and the surviving lanes
//! continue unperturbed — so a batch's per-step cost tracks its *live*
//! width, and stragglers never pay for lanes that already answered.
//!
//! ## Sparsity-adaptive dispatch
//!
//! The dense lockstep kernels skip an input neuron only when it is
//! silent in *every* lane, so at batch 16 a spike-sparse stage
//! degenerates to dense work (almost every neuron is live in *some*
//! lane). The engine therefore carries **two** execution strategies per
//! stage and dispatches per (stage, step) on the input's measured spike
//! density: below the stage's crossover it runs the sparse event-list
//! kernel ([`crate::synapse::Synapse::accumulate_batch_sparse`]),
//! whose cost scales
//! with events per lane; above it, the dense kernel, whose weight reuse
//! wins when most neurons are live anyway. The density probe is free —
//! stage `k`'s input events are exactly stage `k − 1`'s spike counts
//! for this step (already tallied by the fire kernel), and the input
//! layer's events are counted while staging. Crossovers are
//! per-stage and per-model: measure them with
//! [`crate::autotune::autotune_batch`] and install via
//! [`BatchedNetwork::set_dispatch`]. All strategies are bit-identical
//! per lane, so dispatch only ever changes wall-clock.
//!
//! ## Periodic-input PSP caching
//!
//! Phase- and TTFS-coded inputs are *periodic*: the drive at step `t`
//! is a pure function of `t % period` (real coding is the period-1
//! case). The engine therefore caches the first stage's PSP per phase
//! token — after the first period, a step skips the encoders, the SoA
//! staging copy, and the first-stage kernel outright, replaying the
//! cached PSP (and cached per-lane input spike counts) bit-exactly.
//! On the phase-burst MLP workload this turns the first stage from the
//! dominant per-step cost into a single integration pass, and it is
//! the main reason batch-16 lockstep beats the scalar engine ~3.6× on
//! that workload (BENCH_core.json v3). The cache is invalidated
//! whenever the lockstep width changes (lane retirement), and rebuilt
//! over the next period.
//!
//! [`Synapse`]: crate::synapse::Synapse

use crate::coding::InputCoding;
use crate::encoder::InputEncoder;
use crate::layer::{ResetMode, ThresholdPolicy};
use crate::network::{argmax_last, top2_margin, SpikingNetwork};
use crate::recorder::RecordLevel;
use crate::simulator::EvalConfig;
use crate::synapse::KernelScratch;
use crate::SnnError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Density crossover used for stages without a calibrated threshold:
/// inputs with fewer than this fraction of live (neuron, lane) entries
/// run the sparse event-list kernel. The default is deliberately
/// conservative toward dense — the dense kernel's worst case is
/// bounded, while a wrongly sparse stage forfeits its weight reuse
/// (and narrow output rows measured dense-faster even below 10%
/// density) — so uncalibrated engines only go sparse when the input is
/// almost silent. Measure the real crossover per stage with
/// [`crate::autotune::autotune_batch`].
pub const DEFAULT_DENSITY_CROSSOVER: f32 = 0.05;

/// Packed-kernel crossover for stages without a calibrated threshold:
/// below this density the bit-plane packed kernel
/// ([`crate::synapse::Synapse::accumulate_batch_packed`]) runs instead
/// of the sparse event replay. Uncalibrated it mirrors
/// [`DEFAULT_DENSITY_CROSSOVER`] — the packed replay's register
/// blocking makes it at worst the event path's equal, so wherever
/// sparse used to win by default, packed now runs. Measure the real
/// per-stage crossovers with [`crate::autotune::autotune_batch`].
pub const DEFAULT_PACKED_CROSSOVER: f32 = 0.05;

/// Quantized-kernel crossover for stages without a calibrated
/// threshold: below this density an *eligible* stage (see
/// [`DispatchPolicy::quant_eligible`]) runs the int8 kernel
/// ([`crate::quant::QuantizedDense`]) instead of the packed replay.
/// Eligibility is off by default — quantized dispatch is approximate,
/// so a stage must first pass the autotuner's accuracy-delta gate
/// ([`crate::autotune::AutotuneConfig::quant_delta`]) before any
/// threshold applies.
pub const DEFAULT_QUANT_CROSSOVER: f32 = 0.05;

/// How the engine chooses between the quantized, packed, sparse, and
/// dense kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Per (stage, step): quantized below the stage's quant crossover
    /// (accuracy-gated stages only), else packed below the packed
    /// crossover, else sparse below the density crossover, else dense.
    #[default]
    Auto,
    /// Always the dense lockstep kernels (the pre-dispatch behavior).
    ForceDense,
    /// Always the sparse event-list kernels.
    ForceSparse,
    /// Always the bit-plane packed kernels.
    ForcePacked,
    /// Always the int8 quantized kernels where a stage has a quantized
    /// table and the lockstep width fits the mask plane; other stages
    /// fall back to the packed kernels. Bypasses the accuracy gate —
    /// for benchmarks and the quant probe, not production serving.
    ForceQuantized,
}

/// The engine's kernel-dispatch configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchPolicy {
    /// Strategy selection mode.
    pub mode: DispatchMode,
    /// Per-stage density crossovers — one entry per hidden stage plus a
    /// final entry for the output synapse. Missing entries (or an empty
    /// vector) fall back to [`DEFAULT_DENSITY_CROSSOVER`].
    pub thresholds: Vec<f32>,
    /// Per-stage packed-kernel crossovers, same layout. Below a
    /// stage's entry the packed kernel preempts the sparse one;
    /// missing entries fall back to [`DEFAULT_PACKED_CROSSOVER`].
    pub packed_thresholds: Vec<f32>,
    /// Per-stage quantized-kernel crossovers, same layout; consulted
    /// only for stages marked eligible. Missing entries fall back to
    /// [`DEFAULT_QUANT_CROSSOVER`].
    pub quant_thresholds: Vec<f32>,
    /// Per-stage accuracy-gate verdicts: `Auto` dispatch may pick the
    /// quantized kernel only where this is `true`. Missing entries (or
    /// an empty vector — the default) mean **not eligible**, so an
    /// uncalibrated engine never quantizes and stays bit-exact.
    pub quant_eligible: Vec<bool>,
}

impl DispatchPolicy {
    /// A forced-strategy policy (for tests and benchmarks).
    pub fn forced(mode: DispatchMode) -> Self {
        DispatchPolicy {
            mode,
            thresholds: Vec::new(),
            packed_thresholds: Vec::new(),
            quant_thresholds: Vec::new(),
            quant_eligible: Vec::new(),
        }
    }

    /// The sparse/dense crossover for one stage index.
    fn threshold(&self, stage: usize) -> f32 {
        self.thresholds
            .get(stage)
            .copied()
            .unwrap_or(DEFAULT_DENSITY_CROSSOVER)
    }

    /// The packed crossover for one stage index.
    fn packed_threshold(&self, stage: usize) -> f32 {
        self.packed_thresholds
            .get(stage)
            .copied()
            .unwrap_or(DEFAULT_PACKED_CROSSOVER)
    }

    /// The quantized crossover for one stage index.
    fn quant_threshold(&self, stage: usize) -> f32 {
        self.quant_thresholds
            .get(stage)
            .copied()
            .unwrap_or(DEFAULT_QUANT_CROSSOVER)
    }

    /// Whether the accuracy gate cleared this stage for quantized
    /// dispatch under `Auto`.
    fn stage_quant_eligible(&self, stage: usize) -> bool {
        self.quant_eligible.get(stage).copied().unwrap_or(false)
    }
}

/// Per-stage kernel-dispatch counters of one lockstep run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageDispatchStats {
    /// Steps executed with the dense kernel.
    pub dense_steps: u64,
    /// Steps executed with the sparse event-list kernel.
    pub sparse_steps: u64,
    /// Steps executed with the bit-plane packed kernel.
    pub packed_steps: u64,
    /// Steps executed with the int8 quantized kernel.
    pub quant_steps: u64,
    /// Steps that reused the cached PSP (no kernel ran).
    pub cached_steps: u64,
    /// Sum of the observed input densities over executed steps.
    pub density_sum: f64,
}

impl StageDispatchStats {
    /// Mean input density over the steps that ran a kernel.
    pub fn mean_density(&self) -> f64 {
        let executed = self.dense_steps + self.sparse_steps + self.packed_steps + self.quant_steps;
        if executed == 0 {
            0.0
        } else {
            self.density_sum / executed as f64
        }
    }
}

/// Which kernel strategy executed one (stage, step) — the label a
/// [`ProfileSink`] records alongside the step's density and wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The dense lockstep kernel ran.
    Dense,
    /// The sparse event-list kernel ran.
    Sparse,
    /// The bit-plane packed kernel ran.
    Packed,
    /// The int8 quantized kernel ran.
    Quantized,
    /// The cached first-stage PSP was replayed (no kernel ran).
    Cached,
}

/// Fixed-point scale for densities accumulated atomically in a
/// [`ProfileSink`] (1.0 density = 1e6 units).
const DENSITY_FP: f64 = 1_000_000.0;

/// Per-stage atomic profile counters (see [`ProfileSink`]).
#[derive(Debug, Default)]
struct StageProfileCell {
    dense_steps: AtomicU64,
    sparse_steps: AtomicU64,
    packed_steps: AtomicU64,
    quant_steps: AtomicU64,
    cached_steps: AtomicU64,
    /// Density × [`DENSITY_FP`], summed over dense + sparse steps.
    density_fp_sum: AtomicU64,
    /// Wall time of the stage's kernel + integrate + fire work, ns.
    kernel_nanos: AtomicU64,
}

/// A lock-free engine profiling sink: per-(stage, step) kernel
/// strategy, observed input density, and stage wall time, plus
/// whole-step wall time and batch counts.
///
/// Attach one via [`BatchedNetwork::set_profile_sink`]; it may be
/// shared (`Arc`) by every engine serving the same model, so the
/// aggregate is a live per-model stage profile. When no sink is
/// attached the engine takes **no** timestamps — the hot path pays a
/// single branch.
///
/// All counters are monotonic and recorded with `Relaxed` atomics;
/// [`snapshot`](Self::snapshot) is a point-in-time copy (use snapshot
/// deltas to profile a window).
#[derive(Debug)]
pub struct ProfileSink {
    stages: Vec<StageProfileCell>,
    batches: AtomicU64,
    steps: AtomicU64,
    step_nanos: AtomicU64,
}

impl ProfileSink {
    /// A zeroed sink for `stages` pipeline stages (a network's hidden
    /// stages plus its output synapse — `layers().len() + 1`).
    pub fn new(stages: usize) -> Self {
        ProfileSink {
            stages: (0..stages).map(|_| StageProfileCell::default()).collect(),
            batches: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            step_nanos: AtomicU64::new(0),
        }
    }

    /// Number of pipeline stages this sink tracks.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    fn record_stage(&self, stage: usize, kind: KernelKind, density: f64, nanos: u64) {
        let Some(cell) = self.stages.get(stage) else {
            return; // sink sized for a different network: drop silently
        };
        match kind {
            KernelKind::Dense => {
                cell.dense_steps.fetch_add(1, Ordering::Relaxed);
                cell.density_fp_sum
                    .fetch_add((density * DENSITY_FP) as u64, Ordering::Relaxed);
            }
            KernelKind::Sparse => {
                cell.sparse_steps.fetch_add(1, Ordering::Relaxed);
                cell.density_fp_sum
                    .fetch_add((density * DENSITY_FP) as u64, Ordering::Relaxed);
            }
            KernelKind::Packed => {
                cell.packed_steps.fetch_add(1, Ordering::Relaxed);
                cell.density_fp_sum
                    .fetch_add((density * DENSITY_FP) as u64, Ordering::Relaxed);
            }
            KernelKind::Quantized => {
                cell.quant_steps.fetch_add(1, Ordering::Relaxed);
                cell.density_fp_sum
                    .fetch_add((density * DENSITY_FP) as u64, Ordering::Relaxed);
            }
            KernelKind::Cached => {
                cell.cached_steps.fetch_add(1, Ordering::Relaxed);
            }
        }
        cell.kernel_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn record_step(&self, nanos: u64) {
        self.steps.fetch_add(1, Ordering::Relaxed);
        self.step_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every counter (e.g. between benchmark phases).
    pub fn reset(&self) {
        for cell in &self.stages {
            cell.dense_steps.store(0, Ordering::Relaxed);
            cell.sparse_steps.store(0, Ordering::Relaxed);
            cell.packed_steps.store(0, Ordering::Relaxed);
            cell.quant_steps.store(0, Ordering::Relaxed);
            cell.cached_steps.store(0, Ordering::Relaxed);
            cell.density_fp_sum.store(0, Ordering::Relaxed);
            cell.kernel_nanos.store(0, Ordering::Relaxed);
        }
        self.batches.store(0, Ordering::Relaxed);
        self.steps.store(0, Ordering::Relaxed);
        self.step_nanos.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            stages: self
                .stages
                .iter()
                .map(|cell| {
                    let dense = cell.dense_steps.load(Ordering::Relaxed);
                    let sparse = cell.sparse_steps.load(Ordering::Relaxed);
                    let packed = cell.packed_steps.load(Ordering::Relaxed);
                    let quant = cell.quant_steps.load(Ordering::Relaxed);
                    let executed = dense + sparse + packed + quant;
                    let mean_density = if executed == 0 {
                        0.0
                    } else {
                        cell.density_fp_sum.load(Ordering::Relaxed) as f64
                            / DENSITY_FP
                            / executed as f64
                    };
                    StageProfileSnapshot {
                        dense_steps: dense,
                        sparse_steps: sparse,
                        packed_steps: packed,
                        quant_steps: quant,
                        cached_steps: cell.cached_steps.load(Ordering::Relaxed),
                        mean_density,
                        kernel_nanos: cell.kernel_nanos.load(Ordering::Relaxed),
                    }
                })
                .collect(),
            batches: self.batches.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            step_nanos: self.step_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`ProfileSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Per-stage profiles (hidden stages, then the output synapse).
    pub stages: Vec<StageProfileSnapshot>,
    /// Lockstep batches started ([`BatchedNetwork::begin_batch`]).
    pub batches: u64,
    /// Engine steps executed (every live lane advances together).
    pub steps: u64,
    /// Total step wall time, ns.
    pub step_nanos: u64,
}

/// One stage's aggregated profile inside a [`ProfileSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfileSnapshot {
    /// Steps executed with the dense kernel.
    pub dense_steps: u64,
    /// Steps executed with the sparse event-list kernel.
    pub sparse_steps: u64,
    /// Steps executed with the bit-plane packed kernel.
    pub packed_steps: u64,
    /// Steps executed with the int8 quantized kernel.
    pub quant_steps: u64,
    /// Steps that replayed the cached PSP (no kernel ran).
    pub cached_steps: u64,
    /// Mean input density over the steps that ran a kernel.
    pub mean_density: f64,
    /// Stage wall time (kernel + integrate + fire), ns.
    pub kernel_nanos: u64,
}

impl StageProfileSnapshot {
    /// Total steps accounted to this stage.
    pub fn total_steps(&self) -> u64 {
        self.dense_steps
            + self.sparse_steps
            + self.packed_steps
            + self.quant_steps
            + self.cached_steps
    }
}

/// The next lockstep width with a monomorphized fixed-width kernel
/// (`{1, 2, 4, 8, 16}`); widths above 16 are returned unchanged. Ragged
/// tail chunks padded up to this width with dead lanes run 2–4× faster
/// per live lane than the dynamic-width dense path (see
/// [`BatchedStepwiseInference::new_padded`]).
pub fn padded_width(n: usize) -> usize {
    match n {
        0..=1 => n,
        2 => 2,
        3..=4 => 4,
        5..=8 => 8,
        9..=16 => 16,
        wider => wider,
    }
}

/// Per-stage structure-of-arrays state: `[neuron][width]` buffers for
/// membrane potentials, burst functions, PSPs, and output spikes.
#[derive(Debug, Clone, Default)]
struct StageState {
    vmem: Vec<f32>,
    g: Vec<f32>,
    psp: Vec<f32>,
    out: Vec<f32>,
    /// Layout tag of `psp`: `true` when the sparse kernel last wrote it
    /// lane-major (`[lane][neuron]`); the integration step folds either
    /// layout into the batch-innermost membrane, so no standalone
    /// transpose pass ever runs.
    psp_lane_major: bool,
    /// Bit-plane of `out`, built by `fire_lanes` in the same pass that
    /// writes the spikes: one `u64` per neuron, bit `b` set iff lane
    /// `b` fired this step. Rebuilt every step at the current width
    /// (so retirement compaction never has to remap it) and consumed
    /// by the *next* stage's packed kernel within the same `step`
    /// call.
    plane_masks: Vec<u64>,
    /// The step's single spike magnitude when the threshold policy is
    /// uniform across neurons and lanes (fixed/phase) — the degenerate
    /// one-entry exponent plane. `None` for burst layers, whose
    /// magnitudes the packed replay reads off `out` directly.
    plane_uniform: Option<f32>,
    /// Whether `plane_masks` was built this step (lockstep width fit
    /// the 64-bit plane and the dispatch mode can select packed).
    planes_valid: bool,
}

impl StageState {
    fn reset(&mut self, len: usize) {
        self.vmem.clear();
        self.vmem.resize(len, 0.0);
        self.g.clear();
        self.g.resize(len, 1.0);
        self.psp.clear();
        self.psp.resize(len, 0.0);
        self.out.clear();
        self.out.resize(len, 0.0);
        self.psp_lane_major = false;
        self.plane_masks.clear();
        self.plane_uniform = None;
        self.planes_valid = false;
    }

    fn remove_column(&mut self, width: usize, col: usize) {
        remove_column(&mut self.vmem, width, col);
        remove_column(&mut self.g, width, col);
        remove_psp_column(&mut self.psp, self.psp_lane_major, width, col);
        remove_column(&mut self.out, width, col);
    }
}

/// One cached first-stage PSP, keyed by the input-generation token.
#[derive(Debug, Clone)]
struct PspSlot {
    token: u64,
    psp: Vec<f32>,
    lane_major: bool,
}

/// Upper bound on cached first-stage PSP slots. Periodic input codings
/// produce at most `period` distinct tokens (phase coding caps the
/// period at 24); the bound only guards against a pathological caller
/// cycling unbounded token values.
const MAX_INPUT_PSP_SLOTS: usize = 32;

/// `vmem += psp` in whichever layout the PSP was produced: the
/// batch-innermost case is a contiguous elementwise add, the lane-major
/// case folds the transpose into the same single pass. `pub(crate)` so
/// the autotuner's crossover calibration can charge each strategy its
/// real integration cost.
pub(crate) fn integrate(vmem: &mut [f32], psp: &[f32], lane_major: bool, n: usize, w: usize) {
    if lane_major {
        for (b, lane_psp) in psp.chunks_exact(n).enumerate() {
            for (j, &p) in lane_psp.iter().enumerate() {
                vmem[j * w + b] += p;
            }
        }
    } else {
        for (v, p) in vmem.iter_mut().zip(psp) {
            *v += p;
        }
    }
}

/// Column removal for a PSP buffer in either layout: batch-innermost
/// buffers compact like every other SoA buffer; lane-major buffers drop
/// the lane's contiguous row instead.
fn remove_psp_column(buf: &mut Vec<f32>, lane_major: bool, width: usize, col: usize) {
    if lane_major {
        debug_assert!(col < width && buf.len().is_multiple_of(width));
        let rows = buf.len() / width;
        buf.drain(col * rows..(col + 1) * rows);
    } else {
        remove_column(buf, width, col);
    }
}

/// Compacts column `col` out of a `[rows][width]` SoA buffer in place.
fn remove_column(buf: &mut Vec<f32>, width: usize, col: usize) {
    debug_assert!(col < width && buf.len().is_multiple_of(width));
    let rows = buf.len() / width;
    let mut write = 0usize;
    for r in 0..rows {
        for c in 0..width {
            if c != col {
                buf[write] = buf[r * width + c];
                write += 1;
            }
        }
    }
    buf.truncate(write);
}

/// A spiking network stepping up to `max_batch` images in lockstep.
///
/// Holds its own pristine copy of the network (weights, policies) plus
/// SoA dynamic state sized for the current batch width. All buffers are
/// reused across batches — after the first presentation of each batch
/// width, stepping performs **no allocation**.
///
/// This is the storage/kernels half of the batched engine; drive it
/// through [`BatchedStepwiseInference`], which adds per-lane encoders,
/// spike accounting, and early-exit retirement.
#[derive(Debug, Clone)]
pub struct BatchedNetwork {
    template: SpikingNetwork,
    max_batch: usize,
    /// Current lockstep width (live columns).
    width: usize,
    stages: Vec<StageState>,
    out_vmem: Vec<f32>,
    out_psp: Vec<f32>,
    /// Layout tag of `out_psp` (see [`StageState::psp_lane_major`]).
    out_psp_lane_major: bool,
    input_soa: Vec<f32>,
    /// Nonzero entries currently staged per column (the input layer's
    /// free density probe).
    input_nnz: Vec<usize>,
    /// First-stage PSPs cached per input-generation token. Static
    /// inputs occupy one slot; phase/TTFS-periodic inputs one per
    /// phase, so after the first period the encoder, the staging copy,
    /// and the first-stage kernel are all skipped — bit-exactly, since
    /// a periodic drive reproduces the identical PSP. Invalidated
    /// whenever the width changes.
    input_psp_cache: Vec<PspSlot>,
    dispatch: DispatchPolicy,
    /// Per-stage magnitude base for the packed kernel's exponent
    /// plane: stage `k`'s input spikes carry the presynaptic layer's
    /// threshold, so magnitudes are `vth · 2^j` exactly (phase halving
    /// and power-of-two burst growth are exact in `f32`). `None` when
    /// the presynaptic magnitudes have no common power-of-two base
    /// (non-pow2 burst β, analog input) — the packed kernel then
    /// carries every magnitude on its raw side channel.
    packed_base: Vec<Option<f32>>,
    /// Per-stage int8 weight tables for the quantized kernel: derived
    /// eagerly from dense-synapse weights at construction, overridable
    /// from snapshot blobs via [`install_quantized`](Self::install_quantized).
    /// `None` for conv/pool stages (their kernels scatter geometry, not
    /// a weight matrix) and for stages that failed quantization.
    quant: Vec<Option<crate::quant::QuantizedDense>>,
    quant_scratch: crate::quant::QuantScratch,
    scratch: KernelScratch,
    /// Per-stage dispatch counters (hidden stages, then the output
    /// synapse); reset by [`begin_batch`](Self::begin_batch).
    stats: Vec<StageDispatchStats>,
    /// Optional profiling sink; when absent, stepping takes no
    /// timestamps.
    profile: Option<Arc<ProfileSink>>,
}

impl BatchedNetwork {
    /// Wraps a pristine network template for lockstep batches of up to
    /// `max_batch` lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero `max_batch`.
    pub fn new(template: SpikingNetwork, max_batch: usize) -> Result<Self, SnnError> {
        if max_batch == 0 {
            return Err(SnnError::InvalidConfig(
                "batched network needs max_batch >= 1".into(),
            ));
        }
        let stages = vec![StageState::default(); template.layers().len()];
        let n_dispatch = template.layers().len() + 1;
        // Stage k ≥ 1 is fed by layer k − 1's spikes, whose magnitudes
        // are that layer's threshold at fire time: vth (fixed),
        // vth · 2^−(1+phase) (phase), or vth · g with g a power of β
        // (burst) — all exact `vth · 2^j` when β is a power of two.
        // Stage 0's base depends on the input coding; the driver
        // installs it via `set_input_magnitude_base`.
        let mut packed_base = vec![None; n_dispatch];
        for (k, layer) in template.layers().iter().enumerate() {
            packed_base[k + 1] = match layer.policy() {
                ThresholdPolicy::Fixed { vth } | ThresholdPolicy::Phase { vth, .. } => Some(vth),
                ThresholdPolicy::Burst { vth, beta } => {
                    crate::synapse::is_exact_pow2(beta).then_some(vth)
                }
            };
        }
        // Quantize every dense stage's weights eagerly: the table is
        // inert until a policy marks a stage eligible (or a forced
        // quant run asks for it), so default dispatch stays bit-exact.
        let quant = (0..n_dispatch)
            .map(|k| {
                let syn = if k < template.layers().len() {
                    template.layers()[k].synapse()
                } else {
                    template.output_synapse()
                };
                match syn {
                    crate::synapse::Synapse::Dense { weight } => {
                        crate::quant::QuantizedDense::from_weights(weight)
                    }
                    _ => None,
                }
            })
            .collect();
        Ok(BatchedNetwork {
            template,
            max_batch,
            width: 0,
            stages,
            out_vmem: Vec::new(),
            out_psp: Vec::new(),
            out_psp_lane_major: false,
            input_soa: Vec::new(),
            input_nnz: Vec::new(),
            input_psp_cache: Vec::new(),
            dispatch: DispatchPolicy::default(),
            packed_base,
            quant,
            quant_scratch: crate::quant::QuantScratch::default(),
            scratch: KernelScratch::default(),
            stats: vec![StageDispatchStats::default(); n_dispatch],
            profile: None,
        })
    }

    /// Attaches (or detaches, with `None`) a profiling sink. The sink
    /// may be shared by several engines serving the same model; its
    /// counters then aggregate across all of them. Profiling never
    /// changes results — it only adds per-stage timestamps.
    pub fn set_profile_sink(&mut self, sink: Option<Arc<ProfileSink>>) {
        self.profile = sink;
    }

    /// The attached profiling sink, if any.
    pub fn profile_sink(&self) -> Option<&Arc<ProfileSink>> {
        self.profile.as_ref()
    }

    /// Installs a kernel-dispatch policy (mode + per-stage density
    /// crossovers). Dispatch never changes per-lane results — only which
    /// bit-identical kernel executes each (stage, step).
    pub fn set_dispatch(&mut self, dispatch: DispatchPolicy) {
        self.dispatch = dispatch;
    }

    /// The active kernel-dispatch policy.
    pub fn dispatch(&self) -> &DispatchPolicy {
        &self.dispatch
    }

    /// Whether any plane-fed stage (k ≥ 1: hidden stages and the
    /// output synapse) can ever consume a fire-pass bit-plane under
    /// the current `Auto` thresholds. A calibrated policy that zeroed
    /// every downstream packed/quant crossover never replays a plane,
    /// so fire skips building them.
    fn planes_useful(&self) -> bool {
        (1..self.stats.len()).any(|k| {
            self.dispatch.packed_threshold(k) > 0.0
                || (self.dispatch.stage_quant_eligible(k)
                    && self.quant[k].is_some()
                    && self.dispatch.quant_threshold(k) > 0.0)
        })
    }

    /// Declares the common power-of-two base of the *staged input's*
    /// spike magnitudes, enabling the packed kernel's exponent plane
    /// on stage 0: `Some(1.0)` for rate coding (unit spikes) and phase
    /// coding (`2^−k` weights), `None` for analog drives (real coding)
    /// or anything else. A wrong base never corrupts results — the
    /// packed pack pass verifies each magnitude's reconstruction
    /// bit-exactly and falls back to raw storage — it only wastes the
    /// plane. Hidden-stage bases are derived from the layer thresholds
    /// at construction.
    pub fn set_input_magnitude_base(&mut self, base: Option<f32>) {
        self.packed_base[0] = base;
    }

    /// The per-stage int8 weight tables (hidden stages, then the output
    /// synapse). Entries are `None` for conv/pool stages and stages
    /// that failed quantization.
    pub fn quantized(&self) -> &[Option<crate::quant::QuantizedDense>] {
        &self.quant
    }

    /// Replaces the per-stage int8 tables (the snapshot-v6 install
    /// path: serve a saved model with the exact codes it was gated
    /// with, instead of re-deriving them from the f32 weights).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when the table count is not
    /// `layers + 1` or a `Some` entry's shape does not match its
    /// stage's synapse.
    pub fn install_quantized(
        &mut self,
        tables: Vec<Option<crate::quant::QuantizedDense>>,
    ) -> Result<(), SnnError> {
        let n_dispatch = self.template.layers().len() + 1;
        if tables.len() != n_dispatch {
            return Err(SnnError::InvalidConfig(format!(
                "quantized table count {} != {n_dispatch} dispatch stages",
                tables.len()
            )));
        }
        for (k, table) in tables.iter().enumerate() {
            let Some(qd) = table else { continue };
            let syn = if k < self.template.layers().len() {
                self.template.layers()[k].synapse()
            } else {
                self.template.output_synapse()
            };
            if qd.input_len() != syn.input_len() || qd.output_len() != syn.output_len() {
                return Err(SnnError::InvalidConfig(format!(
                    "quantized table {k} shape {}x{} != stage shape {}x{}",
                    qd.input_len(),
                    qd.output_len(),
                    syn.input_len(),
                    syn.output_len()
                )));
            }
        }
        self.quant = tables;
        Ok(())
    }

    /// Per-stage dispatch counters of the current batch (one entry per
    /// hidden stage, then the output synapse). Reset by
    /// [`begin_batch`](Self::begin_batch).
    pub fn dispatch_stats(&self) -> &[StageDispatchStats] {
        &self.stats
    }

    /// The pristine single-image network this batch engine was built
    /// from.
    pub fn template(&self) -> &SpikingNetwork {
        &self.template
    }

    /// Maximum lockstep width.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Current lockstep width — live columns only (0 before the first
    /// [`begin_batch`](Self::begin_batch)).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of input neurons per lane.
    pub fn input_len(&self) -> usize {
        self.template.input_len()
    }

    /// Number of output classes per lane.
    pub fn output_len(&self) -> usize {
        self.template.output_len()
    }

    /// Number of spike-emitting layers (input layer + hidden stages),
    /// i.e. the row count of the per-column spike-count matrix.
    pub fn spiking_layers(&self) -> usize {
        1 + self.template.layers().len()
    }

    /// Prepares the engine for a fresh lockstep batch of `width` lanes:
    /// zeroes membranes and PSPs and resets burst functions and caches.
    /// Buffer capacity is retained, so repeated batches do not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when `width` is zero or
    /// exceeds [`max_batch`](Self::max_batch).
    pub fn begin_batch(&mut self, width: usize) -> Result<(), SnnError> {
        if width == 0 || width > self.max_batch {
            return Err(SnnError::InvalidConfig(format!(
                "batch {width} outside 1..={}",
                self.max_batch
            )));
        }
        self.width = width;
        for (stage, layer) in self.stages.iter_mut().zip(self.template.layers()) {
            stage.reset(layer.len() * width);
        }
        let classes = self.template.output_len();
        self.out_vmem.clear();
        self.out_vmem.resize(classes * width, 0.0);
        self.out_psp.clear();
        self.out_psp.resize(classes * width, 0.0);
        self.out_psp_lane_major = false;
        self.input_soa.clear();
        self.input_soa
            .resize(self.template.input_len() * width, 0.0);
        self.input_nnz.clear();
        self.input_nnz.resize(width, 0);
        self.input_psp_cache.clear();
        self.stats.iter_mut().for_each(|s| *s = Default::default());
        if let Some(sink) = &self.profile {
            sink.record_batch();
        }
        Ok(())
    }

    /// Whether a first-stage PSP is cached for `token` at the current
    /// width. A `true` here means the next [`step`](Self::step) with
    /// this token will not read the staged input at all — callers can
    /// skip encoding and staging it.
    pub fn psp_cached(&self, token: u64) -> bool {
        self.input_psp_cache.iter().any(|s| s.token == token)
    }

    /// Compacts one column out of every SoA buffer: the remaining
    /// columns keep their relative order (column `c > col` becomes
    /// `c - 1`) and their values bit-exactly, and subsequent steps cost
    /// only the reduced width. Invalidates the first stage's PSP cache
    /// and the staged input (restage before the next step).
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()` (or if the batch is already empty).
    pub fn remove_lane(&mut self, col: usize) {
        assert!(col < self.width, "column {col} out of width {}", self.width);
        let width = self.width;
        for stage in &mut self.stages {
            stage.remove_column(width, col);
        }
        remove_column(&mut self.out_vmem, width, col);
        remove_psp_column(&mut self.out_psp, self.out_psp_lane_major, width, col);
        remove_column(&mut self.input_soa, width, col);
        self.input_nnz.remove(col);
        // Cached PSPs are sized for the old width.
        self.input_psp_cache.clear();
        self.width -= 1;
    }

    /// Writes one column's input drive for the upcoming step into the
    /// SoA staging buffer.
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()` or `drive.len() != input_len()`.
    pub fn stage_lane_input(&mut self, col: usize, drive: &[f32]) {
        let w = self.width;
        assert!(col < w, "column out of range");
        assert_eq!(drive.len(), self.template.input_len(), "drive length");
        let mut nnz = 0usize;
        for (i, &v) in drive.iter().enumerate() {
            self.input_soa[i * w + col] = v;
            nnz += (v != 0.0) as usize;
        }
        self.input_nnz[col] = nnz;
    }

    /// Advances every lane one time step using the staged input.
    ///
    /// `input_token` names the staged input's *generation* for the
    /// first-stage PSP cache: equal tokens promise bit-identical staged
    /// inputs. Pass `Some(0)` for a static drive, `Some(t % p)` for a
    /// period-`p` periodic drive (each phase gets its own cache slot),
    /// `None` for non-reproducible drives. When
    /// [`psp_cached`](Self::psp_cached) already holds the token, the
    /// staged input is not read at all — the caller may skip staging.
    ///
    /// `spike_counts` is the per-column spike-count matrix for **this
    /// step**, laid out `[layer][column]` with
    /// [`spiking_layers`](Self::spiking_layers) rows; hidden-stage rows
    /// `1..` are incremented for every spike (row 0, the input layer, is
    /// the caller's — the encoder knows its own spike count).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] before the first
    /// [`begin_batch`](Self::begin_batch) or when `spike_counts` has the
    /// wrong length.
    pub fn step(
        &mut self,
        t: u64,
        input_token: Option<u64>,
        spike_counts: &mut [u64],
    ) -> Result<(), SnnError> {
        let w = self.width;
        if w == 0 {
            return Err(SnnError::InvalidConfig(
                "call begin_batch before stepping".into(),
            ));
        }
        if spike_counts.len() != self.spiking_layers() * w {
            return Err(SnnError::InvalidConfig(format!(
                "spike_counts length {} != {} layers × {w} lanes",
                spike_counts.len(),
                self.spiking_layers()
            )));
        }
        let step_t0 = self.profile.is_some().then(Instant::now);
        // Fire packs each stage's spike row into its bit-plane in the
        // same pass whenever the packed or quantized kernel could
        // consume it: the width must fit the 64-bit mask plane and the
        // dispatch mode must be able to select a plane consumer. Under
        // Auto the per-stage thresholds are consulted too — a policy
        // whose calibration zeroed every downstream packed/quant
        // crossover (dense always wins) makes the plane build pure
        // overhead, so fire skips it (the BENCH v5 stage-0 MLP
        // regression: auto paid plane builds it never replayed).
        let build_planes = w <= 64
            && match self.dispatch.mode {
                DispatchMode::ForcePacked | DispatchMode::ForceQuantized => true,
                DispatchMode::Auto => self.planes_useful(),
                DispatchMode::ForceDense | DispatchMode::ForceSparse => false,
            };
        for (k, layer) in self.template.layers().iter().enumerate() {
            let stage_t0 = self.profile.is_some().then(Instant::now);
            let (done, rest) = self.stages.split_at_mut(k);
            let stage = &mut rest[0];
            let input: &[f32] = if k == 0 {
                &self.input_soa
            } else {
                &done[k - 1].out
            };
            // Stage k's packed kernel replays the bit-plane stage k−1's
            // fire built earlier in this same step; stage 0 has no
            // presynaptic fire pass and self-packs instead.
            let planes = if k == 0 {
                None
            } else {
                let prev = &done[k - 1];
                prev.planes_valid
                    .then_some((prev.plane_masks.as_slice(), prev.plane_uniform))
            };
            // 1. PSP accumulation, dispatched on the input's spike
            // density; the first stage may serve straight from the
            // per-token cache (skipping the kernel — and, for the
            // caller, the encoder and staging — entirely). The density
            // probe is free: stage 0's events were counted while
            // staging, and stage k's input events are exactly stage
            // k−1's spike row for this step, written by `fire_lanes`
            // just above.
            let n = layer.len();
            let token = if k == 0 { input_token } else { None };
            let slot =
                token.and_then(|tok| self.input_psp_cache.iter().position(|s| s.token == tok));
            let (kind, density) = if let Some(si) = slot {
                self.stats[k].cached_steps += 1;
                let slot = &self.input_psp_cache[si];
                // 2. Integration — a lane-major PSP is folded into the
                // batch-innermost membrane in the same pass, so the
                // sparse path never pays a standalone transpose.
                integrate(&mut stage.vmem, &slot.psp, slot.lane_major, n, w);
                (KernelKind::Cached, 0.0)
            } else {
                let events = stage_events(k, w, &self.input_nnz, spike_counts);
                let kind = accumulate_dispatched(
                    layer.synapse(),
                    input,
                    &mut stage.psp,
                    w,
                    events,
                    &self.dispatch,
                    k,
                    self.packed_base[k],
                    planes,
                    self.quant[k].as_ref(),
                    &mut self.quant_scratch,
                    &mut self.scratch,
                    &mut self.stats[k],
                )?;
                // Sparse and packed kernels both write lane-major.
                let lane_major = kind != KernelKind::Dense;
                stage.psp_lane_major = lane_major;
                if let Some(tok) = token {
                    if self.input_psp_cache.len() < MAX_INPUT_PSP_SLOTS {
                        self.input_psp_cache.push(PspSlot {
                            token: tok,
                            psp: stage.psp.clone(),
                            lane_major,
                        });
                    }
                }
                integrate(&mut stage.vmem, &stage.psp, lane_major, n, w);
                (
                    kind,
                    events as f64 / (layer.synapse().input_len() * w) as f64,
                )
            };
            if let Some(bias) = layer.bias() {
                for (vrow, &bb) in stage.vmem.chunks_exact_mut(w).zip(bias) {
                    for v in vrow {
                        *v += bb;
                    }
                }
            }
            // 3–4. Fire, reset, update burst functions, count spikes —
            // and pack the spike row's bit-plane in the same pass.
            let counts = &mut spike_counts[(k + 1) * w..(k + 2) * w];
            stage.plane_uniform = fire_lanes(
                layer.policy(),
                layer.reset_mode(),
                t,
                &mut stage.vmem,
                &mut stage.g,
                &mut stage.out,
                counts,
                w,
                build_planes.then_some(&mut stage.plane_masks),
            );
            stage.planes_valid = build_planes;
            if let (Some(sink), Some(t0)) = (&self.profile, stage_t0) {
                sink.record_stage(k, kind, density, t0.elapsed().as_nanos() as u64);
            }
        }
        // Output accumulator: integrate, never fire. Same density
        // dispatch, with the last stage's spike row as the probe.
        let last_out: &[f32] = match self.stages.last() {
            Some(s) => &s.out,
            None => &self.input_soa,
        };
        let k_out = self.stages.len();
        let out_t0 = self.profile.is_some().then(Instant::now);
        let events = stage_events(k_out, w, &self.input_nnz, spike_counts);
        let out_planes = self.stages.last().and_then(|s| {
            s.planes_valid
                .then_some((s.plane_masks.as_slice(), s.plane_uniform))
        });
        let out_kind = accumulate_dispatched(
            self.template.output_synapse(),
            last_out,
            &mut self.out_psp,
            w,
            events,
            &self.dispatch,
            k_out,
            self.packed_base[k_out],
            out_planes,
            self.quant[k_out].as_ref(),
            &mut self.quant_scratch,
            &mut self.scratch,
            &mut self.stats[k_out],
        )?;
        self.out_psp_lane_major = out_kind != KernelKind::Dense;
        integrate(
            &mut self.out_vmem,
            &self.out_psp,
            self.out_psp_lane_major,
            self.template.output_len(),
            w,
        );
        if let Some(bias) = self.template.output_bias() {
            for (vrow, &bb) in self.out_vmem.chunks_exact_mut(w).zip(bias) {
                for v in vrow {
                    *v += bb;
                }
            }
        }
        if let Some(sink) = &self.profile {
            let density = events as f64 / (self.template.output_synapse().input_len() * w) as f64;
            if let Some(t0) = out_t0 {
                sink.record_stage(k_out, out_kind, density, t0.elapsed().as_nanos() as u64);
            }
            if let Some(t0) = step_t0 {
                sink.record_step(t0.elapsed().as_nanos() as u64);
            }
        }
        Ok(())
    }

    /// One column's output potentials (class scores) as a strided
    /// iterator.
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()`.
    pub fn lane_output_potentials(&self, col: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(col < self.width, "column out of range");
        self.out_vmem.iter().skip(col).step_by(self.width).copied()
    }

    /// Argmax prediction of one column (same tie-breaking as
    /// [`SpikingNetwork::prediction`]).
    pub fn prediction(&self, col: usize) -> usize {
        argmax_last(self.lane_output_potentials(col))
    }

    /// Raw top-2 confidence margin of one column (see
    /// [`crate::StepwiseInference::confidence_margin`]).
    pub fn confidence_margin(&self, col: usize) -> f32 {
        top2_margin(self.lane_output_potentials(col))
    }
}

/// Input events of stage `stage_idx` for this step — the free density
/// probe: the staged-input nonzeros for stage 0, the previous stage's
/// just-written spike row otherwise.
fn stage_events(stage_idx: usize, w: usize, input_nnz: &[usize], spike_counts: &[u64]) -> u64 {
    if stage_idx == 0 {
        input_nnz.iter().map(|&n| n as u64).sum()
    } else {
        spike_counts[stage_idx * w..(stage_idx + 1) * w]
            .iter()
            .sum()
    }
}

/// Zeroes `psp`, runs whichever kernel the dispatch policy selects for
/// this (stage, step) given the input's event count, and records the
/// decision in `st`. Returns whether the PSP was produced lane-major —
/// the shared dispatch body of the hidden-stage loop and the output
/// accumulator in [`BatchedNetwork::step`].
#[allow(clippy::too_many_arguments)]
fn accumulate_dispatched(
    syn: &crate::synapse::Synapse,
    input: &[f32],
    psp: &mut [f32],
    w: usize,
    events: u64,
    dispatch: &DispatchPolicy,
    stage_idx: usize,
    base: Option<f32>,
    planes: Option<(&[u64], Option<f32>)>,
    quant: Option<&crate::quant::QuantizedDense>,
    quant_scratch: &mut crate::quant::QuantScratch,
    scratch: &mut KernelScratch,
    st: &mut StageDispatchStats,
) -> Result<KernelKind, SnnError> {
    let density = events as f64 / (syn.input_len() * w) as f64;
    // The int8 kernel needs a quantized table and a width that fits
    // the 64-bit mask plane; elsewhere ForceQuantized degrades to the
    // packed kernels (which themselves degrade to sparse past 64).
    let quant_ok = quant.is_some() && w <= 64;
    let kind = match dispatch.mode {
        DispatchMode::ForceDense => KernelKind::Dense,
        DispatchMode::ForceSparse => KernelKind::Sparse,
        DispatchMode::ForcePacked => KernelKind::Packed,
        DispatchMode::ForceQuantized => {
            if quant_ok {
                KernelKind::Quantized
            } else {
                KernelKind::Packed
            }
        }
        DispatchMode::Auto => {
            let d = density as f32;
            if quant_ok
                && dispatch.stage_quant_eligible(stage_idx)
                && d < dispatch.quant_threshold(stage_idx)
            {
                KernelKind::Quantized
            } else if d < dispatch.packed_threshold(stage_idx) {
                KernelKind::Packed
            } else if d < dispatch.threshold(stage_idx) {
                KernelKind::Sparse
            } else {
                KernelKind::Dense
            }
        }
    };
    psp.iter_mut().for_each(|p| *p = 0.0);
    match kind {
        KernelKind::Dense => {
            syn.accumulate_batch(input, psp, w)?;
            st.dense_steps += 1;
        }
        KernelKind::Sparse => {
            syn.accumulate_batch_sparse(input, psp, w, scratch)?;
            st.sparse_steps += 1;
        }
        KernelKind::Packed => {
            // Hidden-fed stages replay the bit-plane fire built during
            // staging; stage 0 (and any caller without planes)
            // self-packs from the input SoA.
            match planes {
                Some((masks, uniform)) => syn
                    .accumulate_batch_packed_planes(input, psp, w, masks, uniform, base, scratch)?,
                None => syn.accumulate_batch_packed(input, psp, w, base, scratch)?,
            }
            st.packed_steps += 1;
        }
        KernelKind::Quantized => {
            let qd = quant.expect("dispatch checked the table above");
            match planes {
                Some((masks, uniform)) => {
                    qd.accumulate_packed_planes(input, psp, w, masks, uniform, base, quant_scratch)?
                }
                None => qd.accumulate_packed(input, psp, w, base, quant_scratch)?,
            }
            st.quant_steps += 1;
        }
        KernelKind::Cached => unreachable!("cache hits never dispatch a kernel"),
    }
    st.density_sum += density;
    Ok(kind)
}

/// The fire/reset/burst update of one stage across all lanes, batch
/// innermost, reproducing [`crate::SpikingLayer::step`] exactly per
/// lane.
///
/// When `masks` is `Some`, a trailing [`pack_fire_masks`] sweep packs
/// the spike rows into their bit-planes — one `u64` per neuron, bit
/// `b` set iff lane `b` fired — so the next stage's packed kernel gets
/// its planes without rescanning the input SoA. Callers only request
/// planes at widths ≤ 64. Returns the step's uniform spike magnitude
/// (the one-entry exponent plane) when the policy has one: fixed and
/// phase thresholds are uniform across neurons and lanes; burst
/// magnitudes are not.
#[allow(clippy::too_many_arguments)]
fn fire_lanes(
    policy: ThresholdPolicy,
    reset: ResetMode,
    t: u64,
    vmem: &mut [f32],
    g: &mut [f32],
    out: &mut [f32],
    counts: &mut [u64],
    width: usize,
    masks: Option<&mut Vec<u64>>,
) -> Option<f32> {
    debug_assert!(masks.is_none() || width <= 64);
    match policy {
        ThresholdPolicy::Fixed { vth } => {
            fire_uniform_threshold(vth, reset, vmem, out, counts, width, masks);
            Some(vth)
        }
        ThresholdPolicy::Phase { vth, period } => {
            let phase = (t % period as u64) as i32;
            let th = vth * 0.5f32.powi(1 + phase);
            fire_uniform_threshold(th, reset, vmem, out, counts, width, masks);
            Some(th)
        }
        ThresholdPolicy::Burst { vth, beta } => {
            for ((vrow, grow), orow) in vmem
                .chunks_exact_mut(width)
                .zip(g.chunks_exact_mut(width))
                .zip(out.chunks_exact_mut(width))
            {
                for l in 0..width {
                    let th = vth * grow[l];
                    let fire = vrow[l] >= th;
                    orow[l] = if fire { th } else { 0.0 };
                    vrow[l] = if fire {
                        match reset {
                            ResetMode::Subtraction => vrow[l] - th,
                            ResetMode::Zero => 0.0,
                        }
                    } else {
                        vrow[l]
                    };
                    // Eq. 8: g ← β·g after a spike, 1 otherwise.
                    grow[l] = if fire { grow[l] * beta } else { 1.0 };
                    counts[l] += fire as u64;
                }
            }
            pack_fire_masks(out, width, masks);
            None
        }
    }
}

/// Fire/reset for policies whose threshold is uniform across neurons
/// and lanes at a given step (fixed and phase); `masks` requests the
/// trailing bit-plane sweep ([`pack_fire_masks`]).
fn fire_uniform_threshold(
    th: f32,
    reset: ResetMode,
    vmem: &mut [f32],
    out: &mut [f32],
    counts: &mut [u64],
    width: usize,
    masks: Option<&mut Vec<u64>>,
) {
    for (vrow, orow) in vmem
        .chunks_exact_mut(width)
        .zip(out.chunks_exact_mut(width))
    {
        for l in 0..width {
            let fire = vrow[l] >= th;
            orow[l] = if fire { th } else { 0.0 };
            vrow[l] = if fire {
                match reset {
                    ResetMode::Subtraction => vrow[l] - th,
                    ResetMode::Zero => 0.0,
                }
            } else {
                vrow[l]
            };
            counts[l] += fire as u64;
        }
    }
    pack_fire_masks(out, width, masks);
}

/// Pack the just-written spike rows into per-neuron bit-planes, one
/// `u64` per neuron with bit `b` set iff lane `b` fired.
///
/// This runs as a separate pass *after* the fire loop on purpose:
/// folding `mrow |= (fire as u64) << l` into the fire body introduces a
/// loop-carried scalar dependency with a variable shift that defeats
/// SLP vectorization of the whole fire update. A second sweep over the
/// cache-hot spike rows with the branch-free `movmskps` fold
/// ([`crate::synapse::lane_mask`]) keeps fire at full SIMD speed and
/// packs 4 lanes per instruction.
#[inline(always)]
fn pack_fire_masks(out: &[f32], width: usize, masks: Option<&mut Vec<u64>>) {
    if let Some(masks) = masks {
        masks.clear();
        for orow in out.chunks_exact(width) {
            masks.push(crate::synapse::lane_mask(orow));
        }
    }
}

/// Snapshot of a retired lane, taken the moment it left the batch.
#[derive(Debug, Clone)]
struct RetiredLane {
    potentials: Vec<f32>,
}

/// Incremental lockstep inference over a [`BatchedNetwork`]: the batched
/// sibling of [`crate::StepwiseInference`].
///
/// Construction resets the engine, builds one [`InputEncoder`] per lane,
/// and prepares per-lane spike accounting. Each
/// [`advance`](Self::advance) call presents one time step to every live
/// lane; between steps the caller inspects per-lane predictions,
/// margins, and spike counts, and [`retire`](Self::retire)s lanes whose
/// exit condition is met. Retiring snapshots the lane's outputs and
/// compacts its column out of the SoA state: the surviving lanes are
/// unperturbed (bit-exactly), and subsequent steps cost only the
/// reduced width.
///
/// Lane indices are stable: getters always take the *original* lane
/// index, whether the lane is live or retired.
///
/// ```no_run
/// # use bsnn_core::coding::CodingScheme;
/// # use bsnn_core::simulator::EvalConfig;
/// # use bsnn_core::batch::{BatchedNetwork, BatchedStepwiseInference};
/// # fn demo(engine: &mut BatchedNetwork, images: &[&[f32]]) -> Result<(), bsnn_core::SnnError> {
/// let cfg = EvalConfig::new(CodingScheme::recommended(), 256);
/// let mut run = BatchedStepwiseInference::new(engine, images, &cfg)?;
/// while run.advance()? {
///     for lane in 0..run.batch() {
///         if run.is_active(lane) && run.confidence_margin(lane) > 4.0 {
///             run.retire(lane); // anytime early exit, per lane
///         }
///     }
/// }
/// let answers: Vec<usize> = (0..run.batch()).map(|l| run.prediction(l)).collect();
/// # let _ = answers;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchedStepwiseInference<'net> {
    net: &'net mut BatchedNetwork,
    encoders: Vec<InputEncoder>,
    enc_buf: Vec<f32>,
    /// `[layer][lane]` cumulative spike counts by *original* lane index.
    counts: Vec<u64>,
    /// Per-step scratch, `[layer][column]` at the current width.
    step_counts: Vec<u64>,
    /// Steps executed per lane (frozen at retirement).
    lane_steps: Vec<u64>,
    /// Original lane index of each live column, in column order.
    lane_of_col: Vec<usize>,
    /// Live column of each lane (`None` once retired).
    col_of_lane: Vec<Option<usize>>,
    /// Exit snapshots of retired lanes.
    retired: Vec<Option<RetiredLane>>,
    steps: usize,
    t: u64,
    batch: usize,
    /// Lanes that carry caller images; lanes `real_lanes..batch` are
    /// dead padding (see [`new_padded`](Self::new_padded)).
    real_lanes: usize,
    /// Still-live lanes among the real ones — the run ends when this
    /// hits zero, dead padding notwithstanding.
    live_real: usize,
    input_is_spiking: bool,
    /// `Some(p)`: the drive at step `t` is a pure function of `t % p`
    /// (static real coding is the `p = 1` case), enabling the engine's
    /// per-token PSP cache and this wrapper's per-phase spike-count
    /// cache — on a cache hit the encoder, the staging copy, and the
    /// first-stage kernel are all skipped.
    input_period: Option<u64>,
    /// Cached per-(phase, lane) input spike counts (`[phase][lane]`,
    /// original lane indices; empty unless the input is spiking and
    /// periodic).
    phase_n_in: Vec<u64>,
    /// Which rows of `phase_n_in` have been recorded.
    phase_filled: Vec<bool>,
}

impl<'net> BatchedStepwiseInference<'net> {
    /// Starts a lockstep run over `images` (one lane each): validates
    /// `cfg`, resets the engine via [`BatchedNetwork::begin_batch`], and
    /// builds the per-lane input encoders.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (empty batch, batch wider than the
    /// engine, [`RecordLevel::Trains`] — the lockstep engine records
    /// counts only) and per-image size mismatches.
    pub fn new(
        net: &'net mut BatchedNetwork,
        images: &[&[f32]],
        cfg: &EvalConfig,
    ) -> Result<Self, SnnError> {
        Self::build(net, images, cfg, images.len())
    }

    /// [`new`](Self::new), but ragged widths are padded up to the next
    /// fixed lane width (`{2, 4, 8, 16}`, see [`padded_width`]) with
    /// **dead lanes** driven by all-zero images, instead of running the
    /// 3–4×-slower dynamic-width dense path. Dead lanes are pure
    /// ballast: they occupy tail lane slots so the monomorphized
    /// kernels apply, contribute no input events, are excluded from
    /// [`is_done`](Self::is_done) (the run ends when every *real* lane
    /// is retired or the horizon hits), and their results must simply
    /// be ignored — iterate lanes `0..`[`real_lanes`](Self::real_lanes).
    /// Real-lane results are bit-identical to the unpadded run. No
    /// padding happens when the width is already fixed, exceeds 16, or
    /// the padded width would not fit the engine.
    pub fn new_padded(
        net: &'net mut BatchedNetwork,
        images: &[&[f32]],
        cfg: &EvalConfig,
    ) -> Result<Self, SnnError> {
        let n = images.len();
        let target = padded_width(n);
        if target <= n || target > net.max_batch() {
            return Self::build(net, images, cfg, n);
        }
        let zero = vec![0.0f32; net.input_len()];
        let mut padded: Vec<&[f32]> = Vec::with_capacity(target);
        padded.extend_from_slice(images);
        padded.resize(target, zero.as_slice());
        Self::build(net, &padded, cfg, n)
    }

    fn build(
        net: &'net mut BatchedNetwork,
        images: &[&[f32]],
        cfg: &EvalConfig,
        real_lanes: usize,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        if matches!(cfg.record, RecordLevel::Trains { .. }) {
            return Err(SnnError::InvalidConfig(
                "batched inference records spike counts only".into(),
            ));
        }
        if images.is_empty() {
            return Err(SnnError::InvalidConfig("empty lockstep batch".into()));
        }
        let batch = images.len();
        for image in images {
            if image.len() != net.input_len() {
                return Err(SnnError::InputSizeMismatch {
                    expected: net.input_len(),
                    actual: image.len(),
                });
            }
        }
        net.begin_batch(batch)?;
        let encoders: Vec<InputEncoder> = images
            .iter()
            .map(|image| InputEncoder::new(cfg.scheme.input, image, cfg.phase_period))
            .collect::<Result<_, _>>()?;
        let input_period = encoders[0]
            .period()
            .filter(|&p| (p as usize) <= MAX_INPUT_PSP_SLOTS)
            .map(u64::from);
        let input_is_spiking = cfg.scheme.input != InputCoding::Real;
        // Spiking input codings emit unit-base magnitudes: 1.0 (rate,
        // TTFS) or 2^−(1+phase) (phase) — all exactly `1.0 · 2^j`, so
        // the packed kernel's exponent plane covers stage 0. Real
        // coding stages an analog drive with no common base.
        net.set_input_magnitude_base(input_is_spiking.then_some(1.0));
        let cache_rows = if input_is_spiking {
            input_period.unwrap_or(0) as usize
        } else {
            0
        };
        let rows = net.spiking_layers();
        Ok(BatchedStepwiseInference {
            enc_buf: vec![0.0; net.input_len()],
            counts: vec![0; rows * batch],
            step_counts: vec![0; rows * batch],
            lane_steps: vec![0; batch],
            lane_of_col: (0..batch).collect(),
            col_of_lane: (0..batch).map(Some).collect(),
            retired: vec![None; batch],
            steps: cfg.steps,
            t: 0,
            batch,
            real_lanes,
            live_real: real_lanes,
            input_is_spiking,
            input_period,
            phase_n_in: vec![0; cache_rows * batch],
            phase_filled: vec![false; cache_rows],
            net,
            encoders,
        })
    }

    /// Lockstep width at construction (number of lanes, live + retired,
    /// **including** any dead padding lanes).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of lanes carrying caller images: lanes `0..real_lanes()`
    /// hold results; any further lanes are dead padding (see
    /// [`new_padded`](Self::new_padded)).
    pub fn real_lanes(&self) -> usize {
        self.real_lanes
    }

    /// Number of still-live lanes.
    pub fn live_lanes(&self) -> usize {
        self.lane_of_col.len()
    }

    /// The configured simulation horizon.
    pub fn horizon(&self) -> usize {
        self.steps
    }

    /// Global steps executed so far (every live lane advances together).
    pub fn steps_taken_global(&self) -> usize {
        self.t as usize
    }

    /// Steps a lane executed before it retired (or so far, if live).
    pub fn steps_taken(&self, lane: usize) -> usize {
        self.lane_steps[lane] as usize
    }

    /// Whether the run is over (horizon reached or every real lane
    /// retired — dead padding lanes never hold a run open).
    pub fn is_done(&self) -> bool {
        self.t as usize >= self.steps || self.live_real == 0
    }

    /// Whether a lane is still live.
    pub fn is_active(&self, lane: usize) -> bool {
        self.col_of_lane[lane].is_some()
    }

    /// Retires a lane: snapshots its outputs and compacts its column
    /// out of the batch, shrinking the lockstep width. The surviving
    /// lanes continue bit-exactly as if nothing happened. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn retire(&mut self, lane: usize) {
        let Some(col) = self.col_of_lane[lane] else {
            return; // already retired
        };
        self.retired[lane] = Some(RetiredLane {
            potentials: self.net.lane_output_potentials(col).collect(),
        });
        self.net.remove_lane(col);
        self.lane_of_col.remove(col);
        self.col_of_lane[lane] = None;
        if lane < self.real_lanes {
            self.live_real -= 1;
        }
        for c in self.col_of_lane.iter_mut().flatten() {
            if *c > col {
                *c -= 1;
            }
        }
        // (The engine dropped its PSP cache with the column, so the
        // next step restages the drive at the new width.)
    }

    /// Presents one time step to every live lane. Returns `Ok(false)`
    /// without stepping once the horizon is reached or every lane has
    /// retired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn advance(&mut self) -> Result<bool, SnnError> {
        if self.is_done() {
            return Ok(false);
        }
        let t = self.t;
        let width = self.lane_of_col.len();
        let rows = self.net.spiking_layers();
        let token = self.input_period.map(|p| t % p);
        let cached = token.is_some_and(|tok| self.net.psp_cached(tok));
        if !cached {
            // Encode and stage this step's drive (periodic encoders are
            // pure functions of `t % p`, so re-encoding after a cache
            // invalidation reproduces the identical drive and counts).
            for col in 0..width {
                let lane = self.lane_of_col[col];
                let n_in = self.encoders[lane].step(t, &mut self.enc_buf) as u64;
                self.net.stage_lane_input(col, &self.enc_buf);
                if self.input_is_spiking {
                    self.counts[lane] += n_in;
                    if let Some(tok) = token {
                        self.phase_n_in[tok as usize * self.batch + lane] = n_in;
                    }
                }
            }
            if let Some(tok) = token {
                if self.input_is_spiking {
                    self.phase_filled[tok as usize] = true;
                }
            }
        } else if self.input_is_spiking {
            // Engine serves the PSP from its cache; the per-lane input
            // spike counts come from ours.
            let tok = token.expect("cached implies a token") as usize;
            debug_assert!(self.phase_filled[tok], "hit before any staging");
            for &lane in &self.lane_of_col {
                self.counts[lane] += self.phase_n_in[tok * self.batch + lane];
            }
        }
        let step_counts = &mut self.step_counts[..rows * width];
        step_counts.iter_mut().for_each(|c| *c = 0);
        self.net.step(t, token, step_counts)?;
        // Fold per-column step counts into the per-lane accumulators.
        for row in 1..rows {
            for col in 0..width {
                let lane = self.lane_of_col[col];
                self.counts[row * self.batch + lane] += self.step_counts[row * width + col];
            }
        }
        for &lane in &self.lane_of_col {
            self.lane_steps[lane] += 1;
        }
        self.t += 1;
        Ok(true)
    }

    /// One lane's output potentials, copied out in class order (the
    /// retirement snapshot for retired lanes).
    pub fn output_potentials(&self, lane: usize) -> Vec<f32> {
        match self.col_of_lane[lane] {
            Some(col) => self.net.lane_output_potentials(col).collect(),
            None => self.retired[lane]
                .as_ref()
                .expect("retired lane has a snapshot")
                .potentials
                .clone(),
        }
    }

    /// One lane's argmax prediction.
    pub fn prediction(&self, lane: usize) -> usize {
        match self.col_of_lane[lane] {
            Some(col) => self.net.prediction(col),
            None => argmax_last(
                self.retired[lane]
                    .as_ref()
                    .expect("retired lane has a snapshot")
                    .potentials
                    .iter()
                    .copied(),
            ),
        }
    }

    /// One lane's raw top-2 confidence margin.
    pub fn confidence_margin(&self, lane: usize) -> f32 {
        match self.col_of_lane[lane] {
            Some(col) => self.net.confidence_margin(col),
            None => top2_margin(
                self.retired[lane]
                    .as_ref()
                    .expect("retired lane has a snapshot")
                    .potentials
                    .iter()
                    .copied(),
            ),
        }
    }

    /// One lane's cumulative spikes across all layers (frozen at
    /// retirement).
    pub fn total_spikes(&self, lane: usize) -> u64 {
        self.counts.iter().skip(lane).step_by(self.batch).sum()
    }

    /// One lane's per-layer cumulative spike counts (layer 0 = input),
    /// matching [`crate::SpikeRecord::layer_counts`].
    pub fn layer_counts(&self, lane: usize) -> Vec<u64> {
        self.counts
            .iter()
            .skip(lane)
            .step_by(self.batch)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{CodingScheme, HiddenCoding};
    use crate::layer::SpikingLayer;
    use crate::synapse::Synapse;
    use bsnn_tensor::Tensor;

    fn identity_synapse(n: usize) -> Synapse {
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 1.0;
        }
        Synapse::Dense {
            weight: Tensor::from_vec(w, &[n, n]).unwrap(),
        }
    }

    fn tiny_network(vth: f32) -> SpikingNetwork {
        let hidden =
            SpikingLayer::new(identity_synapse(2), None, ThresholdPolicy::Fixed { vth }).unwrap();
        SpikingNetwork::new(2, vec![hidden], identity_synapse(2), None).unwrap()
    }

    fn real_rate() -> CodingScheme {
        CodingScheme::new(InputCoding::Real, HiddenCoding::Rate)
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(BatchedNetwork::new(tiny_network(0.5), 0).is_err());
        let mut engine = BatchedNetwork::new(tiny_network(0.5), 2).unwrap();
        assert!(engine.begin_batch(0).is_err());
        assert!(engine.begin_batch(3).is_err());
        assert!(engine.begin_batch(2).is_ok());
        // Stepping needs a correctly sized count matrix.
        assert!(engine.step(0, None, &mut [0u64; 3]).is_err());
        assert!(engine.step(0, None, &mut [0u64; 4]).is_ok());
        // Trains recording is unsupported in lockstep.
        let cfg = EvalConfig::new(real_rate(), 8).with_record(RecordLevel::Trains {
            fraction: 0.5,
            seed: 0,
        });
        let img = [0.5f32, 0.5];
        assert!(BatchedStepwiseInference::new(&mut engine, &[&img], &cfg).is_err());
        // Empty batches and wrong image sizes are rejected.
        let cfg = EvalConfig::new(real_rate(), 8);
        assert!(BatchedStepwiseInference::new(&mut engine, &[], &cfg).is_err());
        let short = [0.5f32];
        assert!(BatchedStepwiseInference::new(&mut engine, &[&short], &cfg).is_err());
    }

    #[test]
    fn step_before_begin_batch_errors() {
        let mut engine = BatchedNetwork::new(tiny_network(0.5), 2).unwrap();
        assert!(engine.step(0, None, &mut []).is_err());
    }

    #[test]
    fn lockstep_lanes_accumulate_independently() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 10);
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&a, &b], &cfg).unwrap();
        while run.advance().unwrap() {}
        assert!(run.is_done());
        assert_eq!(run.steps_taken(0), 10);
        assert_eq!(run.steps_taken(1), 10);
        assert_eq!(run.prediction(0), 0);
        assert_eq!(run.prediction(1), 1);
        assert!(run.total_spikes(0) > 0);
        // Lane 0 only drives neuron 0, lane 1 only neuron 1.
        let p0 = run.output_potentials(0);
        let p1 = run.output_potentials(1);
        assert_eq!(p0[1], 0.0);
        assert_eq!(p1[0], 0.0);
    }

    #[test]
    fn retired_lane_freezes_and_compacts_while_other_continues() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 12);
        let img = [0.9f32, 0.1];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
        for _ in 0..4 {
            assert!(run.advance().unwrap());
        }
        run.retire(0);
        run.retire(0); // idempotent
        assert!(!run.is_active(0));
        assert_eq!(run.live_lanes(), 1);
        let frozen = run.output_potentials(0);
        let frozen_spikes = run.total_spikes(0);
        while run.advance().unwrap() {}
        assert_eq!(run.output_potentials(0), frozen, "retired lane moved");
        assert_eq!(run.total_spikes(0), frozen_spikes);
        assert_eq!(run.steps_taken(0), 4);
        assert_eq!(run.steps_taken(1), 12);
        assert!(run.output_potentials(1)[0] > frozen[0]);
    }

    #[test]
    fn all_lanes_retired_ends_run() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 100);
        let img = [0.5f32, 0.5];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
        assert!(run.advance().unwrap());
        run.retire(0);
        run.retire(1);
        assert_eq!(run.live_lanes(), 0);
        assert!(!run.advance().unwrap());
        assert_eq!(run.steps_taken_global(), 1);
    }

    #[test]
    fn repeated_batches_reuse_buffers() {
        // Same engine across batch widths 2 → 1 → 2: state fully resets.
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 6);
        let img = [0.8f32, 0.2];
        let first = {
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
            while run.advance().unwrap() {}
            run.output_potentials(0)
        };
        {
            let other = [0.1f32, 0.9];
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&other], &cfg).unwrap();
            while run.advance().unwrap() {}
            assert_eq!(run.prediction(0), 1);
        }
        let again = {
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
            while run.advance().unwrap() {}
            run.output_potentials(0)
        };
        assert_eq!(first, again, "stale state leaked across batches");
    }

    #[test]
    fn padded_width_snaps_to_fixed_lanes() {
        assert_eq!(padded_width(0), 0);
        assert_eq!(padded_width(1), 1);
        assert_eq!(padded_width(2), 2);
        assert_eq!(padded_width(3), 4);
        assert_eq!(padded_width(5), 8);
        assert_eq!(padded_width(8), 8);
        assert_eq!(padded_width(9), 16);
        assert_eq!(padded_width(16), 16);
        assert_eq!(padded_width(17), 17, "beyond 16 there is no fixed kernel");
    }

    #[test]
    fn padded_run_matches_plain_and_ends_on_real_lanes() {
        let cfg = EvalConfig::new(real_rate(), 9);
        let imgs: [[f32; 2]; 3] = [[0.9, 0.1], [0.2, 0.7], [0.5, 0.5]];
        let refs: Vec<&[f32]> = imgs.iter().map(|i| i.as_slice()).collect();
        let mut plain_engine = BatchedNetwork::new(tiny_network(0.25), 4).unwrap();
        let mut plain = BatchedStepwiseInference::new(&mut plain_engine, &refs, &cfg).unwrap();
        while plain.advance().unwrap() {}
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 4).unwrap();
        let mut run = BatchedStepwiseInference::new_padded(&mut engine, &refs, &cfg).unwrap();
        assert_eq!(run.batch(), 4, "3 lanes pad to the next fixed width");
        assert_eq!(run.real_lanes(), 3);
        while run.advance().unwrap() {}
        for lane in 0..run.real_lanes() {
            assert_eq!(run.output_potentials(lane), plain.output_potentials(lane));
            assert_eq!(run.prediction(lane), plain.prediction(lane));
            assert_eq!(run.total_spikes(lane), plain.total_spikes(lane));
        }
        // Retiring every real lane ends the run even though the dead
        // padding lane never retires.
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 4).unwrap();
        let mut run = BatchedStepwiseInference::new_padded(&mut engine, &refs, &cfg).unwrap();
        assert!(run.advance().unwrap());
        run.retire(0);
        run.retire(1);
        run.retire(2);
        assert!(run.is_done());
        assert!(!run.advance().unwrap());
        assert_eq!(run.live_lanes(), 1, "dead lane still live, run over");
        // A width the engine cannot pad (padded width > max_batch) runs
        // unpadded; a fixed width is left alone.
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 3).unwrap();
        let run = BatchedStepwiseInference::new_padded(&mut engine, &refs, &cfg).unwrap();
        assert_eq!(run.batch(), 3);
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 4).unwrap();
        let two: Vec<&[f32]> = refs[..2].to_vec();
        let run = BatchedStepwiseInference::new_padded(&mut engine, &two, &cfg).unwrap();
        assert_eq!(run.batch(), 2);
    }

    #[test]
    fn forced_strategies_agree_bitwise_and_stats_account_steps() {
        let cfg = EvalConfig::new(real_rate(), 7);
        let imgs: [[f32; 2]; 2] = [[0.9, 0.0], [0.0, 0.6]];
        let refs: Vec<&[f32]> = imgs.iter().map(|i| i.as_slice()).collect();
        let mut pots = Vec::new();
        for mode in [
            DispatchMode::ForceDense,
            DispatchMode::ForceSparse,
            DispatchMode::ForcePacked,
            DispatchMode::Auto,
        ] {
            let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
            engine.set_dispatch(DispatchPolicy::forced(mode));
            assert_eq!(engine.dispatch().mode, mode);
            let mut run = BatchedStepwiseInference::new(&mut engine, &refs, &cfg).unwrap();
            while run.advance().unwrap() {}
            pots.push((0..2).map(|l| run.output_potentials(l)).collect::<Vec<_>>());
            // Every (stage, step) is accounted to exactly one bucket.
            for st in engine.dispatch_stats() {
                assert_eq!(
                    st.dense_steps
                        + st.sparse_steps
                        + st.packed_steps
                        + st.quant_steps
                        + st.cached_steps,
                    7
                );
                assert!(st.mean_density() >= 0.0 && st.mean_density() <= 1.0);
            }
            let stats = engine.dispatch_stats();
            assert!(
                stats.iter().all(|s| s.quant_steps == 0),
                "gate off by default"
            );
            match mode {
                DispatchMode::ForceDense => {
                    assert!(stats.iter().all(|s| s.sparse_steps + s.packed_steps == 0))
                }
                DispatchMode::ForceSparse => {
                    assert!(stats.iter().all(|s| s.dense_steps + s.packed_steps == 0))
                }
                DispatchMode::ForcePacked => {
                    assert!(stats.iter().all(|s| s.dense_steps + s.sparse_steps == 0))
                }
                DispatchMode::ForceQuantized | DispatchMode::Auto => {}
            }
        }
        assert_eq!(pots[0], pots[1], "sparse vs dense bit drift");
        assert_eq!(pots[0], pots[2], "packed vs dense bit drift");
        assert_eq!(pots[0], pots[3], "auto vs dense bit drift");
    }

    #[test]
    fn forced_quantized_runs_int8_and_stays_close() {
        let cfg = EvalConfig::new(real_rate(), 7);
        let imgs: [[f32; 2]; 2] = [[0.9, 0.0], [0.0, 0.6]];
        let refs: Vec<&[f32]> = imgs.iter().map(|i| i.as_slice()).collect();
        let mut dense = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let mut run = BatchedStepwiseInference::new(&mut dense, &refs, &cfg).unwrap();
        while run.advance().unwrap() {}
        let expected: Vec<Vec<f32>> = (0..2).map(|l| run.output_potentials(l)).collect();
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        assert!(engine.quantized().iter().all(Option::is_some));
        engine.set_dispatch(DispatchPolicy::forced(DispatchMode::ForceQuantized));
        let mut run = BatchedStepwiseInference::new(&mut engine, &refs, &cfg).unwrap();
        while run.advance().unwrap() {}
        // Identity weights round-trip through scale 1/127 with only
        // rounding-level error, so potentials stay close but need not
        // be bit-identical.
        for (lane, want) in expected.iter().enumerate() {
            let got = run.output_potentials(lane);
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() <= 1e-3, "lane {lane}: {g} vs {w}");
            }
        }
        // Dense stages all have tables, so every step runs the int8 kernel.
        for st in engine.dispatch_stats() {
            assert_eq!(st.quant_steps + st.cached_steps, 7);
            assert_eq!(st.dense_steps + st.sparse_steps + st.packed_steps, 0);
        }
    }

    #[test]
    fn profile_sink_accounts_every_stage_step_and_changes_nothing() {
        let cfg = EvalConfig::new(real_rate(), 7);
        let imgs: [[f32; 2]; 2] = [[0.9, 0.0], [0.0, 0.6]];
        let refs: Vec<&[f32]> = imgs.iter().map(|i| i.as_slice()).collect();
        // Reference run without a sink.
        let mut plain = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let mut run = BatchedStepwiseInference::new(&mut plain, &refs, &cfg).unwrap();
        while run.advance().unwrap() {}
        let expected: Vec<Vec<f32>> = (0..2).map(|l| run.output_potentials(l)).collect();
        // Profiled run: identical results, fully accounted counters.
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let sink = Arc::new(ProfileSink::new(engine.template().layers().len() + 1));
        engine.set_profile_sink(Some(Arc::clone(&sink)));
        assert!(engine.profile_sink().is_some());
        let mut run = BatchedStepwiseInference::new(&mut engine, &refs, &cfg).unwrap();
        while run.advance().unwrap() {}
        let got: Vec<Vec<f32>> = (0..2).map(|l| run.output_potentials(l)).collect();
        assert_eq!(got, expected, "profiling changed results");
        let snap = sink.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.steps, 7);
        assert_eq!(snap.stages.len(), 2);
        for st in &snap.stages {
            assert_eq!(st.total_steps(), 7, "every (stage, step) accounted");
            assert!(st.mean_density >= 0.0 && st.mean_density <= 1.0);
        }
        // The profile's strategy mix mirrors the engine's dispatch stats.
        for (st, ds) in snap.stages.iter().zip(engine.dispatch_stats()) {
            assert_eq!(st.dense_steps, ds.dense_steps);
            assert_eq!(st.sparse_steps, ds.sparse_steps);
            assert_eq!(st.packed_steps, ds.packed_steps);
            assert_eq!(st.quant_steps, ds.quant_steps);
            assert_eq!(st.cached_steps, ds.cached_steps);
        }
        sink.reset();
        let zero = sink.snapshot();
        assert_eq!(zero.steps, 0);
        assert_eq!(zero.batches, 0);
        assert!(zero.stages.iter().all(|s| s.total_steps() == 0));
    }

    #[test]
    fn remove_column_compacts_in_place() {
        let mut buf = vec![
            0.0, 1.0, 2.0, // row 0
            3.0, 4.0, 5.0, // row 1
        ];
        remove_column(&mut buf, 3, 1);
        assert_eq!(buf, vec![0.0, 2.0, 3.0, 5.0]);
        // Removing the only column of a width-1 buffer empties it.
        let mut single = vec![7.0, 8.0];
        remove_column(&mut single, 1, 0);
        assert!(single.is_empty());
    }
}
