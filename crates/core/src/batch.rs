//! Batched lockstep inference: step B images through one network
//! simultaneously, with all dynamic state held in structure-of-arrays,
//! batch-innermost layout (`[neuron][batch]`).
//!
//! ## Why lockstep
//!
//! The serving runtime's micro-batching (PR 2) amortizes queue
//! synchronization but still runs each request's simulation alone, so
//! the hot scatter loops in [`Synapse`] stay scalar. A lockstep batch
//! makes the *innermost* dimension of every kernel the contiguous batch
//! axis: LLVM auto-vectorizes the lane loop (no `unsafe`, no
//! intrinsics) and every synaptic weight is loaded once per batch
//! instead of once per image. The trade is sparsity: an input neuron is
//! skipped only when it is silent in *every* lane. Measured on the
//! synthetic-digit conv network this trade wins >2.5× at batch 16 (see
//! the `batched_sim` bench).
//!
//! ## Lane semantics
//!
//! Lanes never interact: per-lane results are bit-identical to running
//! each image alone through [`crate::StepwiseInference`] (pinned by the
//! `batched_equivalence` test suite across all threshold policies, both
//! reset modes, and batch sizes {1, 2, 7, 16}). A lane can *retire*
//! mid-run (anytime early exit): its outputs are snapshotted, its
//! column is compacted out of the SoA state, and the surviving lanes
//! continue unperturbed — so a batch's per-step cost tracks its *live*
//! width, and stragglers never pay for lanes that already answered.
//!
//! [`Synapse`]: crate::synapse::Synapse

use crate::coding::InputCoding;
use crate::encoder::InputEncoder;
use crate::layer::{ResetMode, ThresholdPolicy};
use crate::network::{argmax_last, top2_margin, SpikingNetwork};
use crate::recorder::RecordLevel;
use crate::simulator::EvalConfig;
use crate::SnnError;

/// Per-stage structure-of-arrays state: `[neuron][width]` buffers for
/// membrane potentials, burst functions, PSPs, and output spikes.
#[derive(Debug, Clone, Default)]
struct StageState {
    vmem: Vec<f32>,
    g: Vec<f32>,
    psp: Vec<f32>,
    out: Vec<f32>,
    /// Input-generation token of the cached `psp` (first stage only).
    psp_token: Option<u64>,
}

impl StageState {
    fn reset(&mut self, len: usize) {
        self.vmem.clear();
        self.vmem.resize(len, 0.0);
        self.g.clear();
        self.g.resize(len, 1.0);
        self.psp.clear();
        self.psp.resize(len, 0.0);
        self.out.clear();
        self.out.resize(len, 0.0);
        self.psp_token = None;
    }

    fn remove_column(&mut self, width: usize, col: usize) {
        remove_column(&mut self.vmem, width, col);
        remove_column(&mut self.g, width, col);
        remove_column(&mut self.psp, width, col);
        remove_column(&mut self.out, width, col);
        self.psp_token = None;
    }
}

/// Compacts column `col` out of a `[rows][width]` SoA buffer in place.
fn remove_column(buf: &mut Vec<f32>, width: usize, col: usize) {
    debug_assert!(col < width && buf.len().is_multiple_of(width));
    let rows = buf.len() / width;
    let mut write = 0usize;
    for r in 0..rows {
        for c in 0..width {
            if c != col {
                buf[write] = buf[r * width + c];
                write += 1;
            }
        }
    }
    buf.truncate(write);
}

/// A spiking network stepping up to `max_batch` images in lockstep.
///
/// Holds its own pristine copy of the network (weights, policies) plus
/// SoA dynamic state sized for the current batch width. All buffers are
/// reused across batches — after the first presentation of each batch
/// width, stepping performs **no allocation**.
///
/// This is the storage/kernels half of the batched engine; drive it
/// through [`BatchedStepwiseInference`], which adds per-lane encoders,
/// spike accounting, and early-exit retirement.
#[derive(Debug, Clone)]
pub struct BatchedNetwork {
    template: SpikingNetwork,
    max_batch: usize,
    /// Current lockstep width (live columns).
    width: usize,
    stages: Vec<StageState>,
    out_vmem: Vec<f32>,
    out_psp: Vec<f32>,
    input_soa: Vec<f32>,
}

impl BatchedNetwork {
    /// Wraps a pristine network template for lockstep batches of up to
    /// `max_batch` lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero `max_batch`.
    pub fn new(template: SpikingNetwork, max_batch: usize) -> Result<Self, SnnError> {
        if max_batch == 0 {
            return Err(SnnError::InvalidConfig(
                "batched network needs max_batch >= 1".into(),
            ));
        }
        let stages = vec![StageState::default(); template.layers().len()];
        Ok(BatchedNetwork {
            template,
            max_batch,
            width: 0,
            stages,
            out_vmem: Vec::new(),
            out_psp: Vec::new(),
            input_soa: Vec::new(),
        })
    }

    /// The pristine single-image network this batch engine was built
    /// from.
    pub fn template(&self) -> &SpikingNetwork {
        &self.template
    }

    /// Maximum lockstep width.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Current lockstep width — live columns only (0 before the first
    /// [`begin_batch`](Self::begin_batch)).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of input neurons per lane.
    pub fn input_len(&self) -> usize {
        self.template.input_len()
    }

    /// Number of output classes per lane.
    pub fn output_len(&self) -> usize {
        self.template.output_len()
    }

    /// Number of spike-emitting layers (input layer + hidden stages),
    /// i.e. the row count of the per-column spike-count matrix.
    pub fn spiking_layers(&self) -> usize {
        1 + self.template.layers().len()
    }

    /// Prepares the engine for a fresh lockstep batch of `width` lanes:
    /// zeroes membranes and PSPs and resets burst functions and caches.
    /// Buffer capacity is retained, so repeated batches do not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when `width` is zero or
    /// exceeds [`max_batch`](Self::max_batch).
    pub fn begin_batch(&mut self, width: usize) -> Result<(), SnnError> {
        if width == 0 || width > self.max_batch {
            return Err(SnnError::InvalidConfig(format!(
                "batch {width} outside 1..={}",
                self.max_batch
            )));
        }
        self.width = width;
        for (stage, layer) in self.stages.iter_mut().zip(self.template.layers()) {
            stage.reset(layer.len() * width);
        }
        let classes = self.template.output_len();
        self.out_vmem.clear();
        self.out_vmem.resize(classes * width, 0.0);
        self.out_psp.clear();
        self.out_psp.resize(classes * width, 0.0);
        self.input_soa.clear();
        self.input_soa
            .resize(self.template.input_len() * width, 0.0);
        Ok(())
    }

    /// Compacts one column out of every SoA buffer: the remaining
    /// columns keep their relative order (column `c > col` becomes
    /// `c - 1`) and their values bit-exactly, and subsequent steps cost
    /// only the reduced width. Invalidates the first stage's PSP cache
    /// and the staged input (restage before the next step).
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()` (or if the batch is already empty).
    pub fn remove_lane(&mut self, col: usize) {
        assert!(col < self.width, "column {col} out of width {}", self.width);
        let width = self.width;
        for stage in &mut self.stages {
            stage.remove_column(width, col);
        }
        remove_column(&mut self.out_vmem, width, col);
        remove_column(&mut self.out_psp, width, col);
        remove_column(&mut self.input_soa, width, col);
        self.width -= 1;
    }

    /// Writes one column's input drive for the upcoming step into the
    /// SoA staging buffer.
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()` or `drive.len() != input_len()`.
    pub fn stage_lane_input(&mut self, col: usize, drive: &[f32]) {
        let w = self.width;
        assert!(col < w, "column out of range");
        assert_eq!(drive.len(), self.template.input_len(), "drive length");
        for (i, &v) in drive.iter().enumerate() {
            self.input_soa[i * w + col] = v;
        }
    }

    /// Advances every lane one time step using the staged input.
    ///
    /// `input_token` is the input-generation token for the first stage's
    /// PSP cache (same contract as
    /// [`crate::SpikingLayer::step_with_token`]): pass an unchanged
    /// `Some(token)` while the staged input is unchanged.
    ///
    /// `spike_counts` is the per-column spike-count matrix for **this
    /// step**, laid out `[layer][column]` with
    /// [`spiking_layers`](Self::spiking_layers) rows; hidden-stage rows
    /// `1..` are incremented for every spike (row 0, the input layer, is
    /// the caller's — the encoder knows its own spike count).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] before the first
    /// [`begin_batch`](Self::begin_batch) or when `spike_counts` has the
    /// wrong length.
    pub fn step(
        &mut self,
        t: u64,
        input_token: Option<u64>,
        spike_counts: &mut [u64],
    ) -> Result<(), SnnError> {
        let w = self.width;
        if w == 0 {
            return Err(SnnError::InvalidConfig(
                "call begin_batch before stepping".into(),
            ));
        }
        if spike_counts.len() != self.spiking_layers() * w {
            return Err(SnnError::InvalidConfig(format!(
                "spike_counts length {} != {} layers × {w} lanes",
                spike_counts.len(),
                self.spiking_layers()
            )));
        }
        for (k, layer) in self.template.layers().iter().enumerate() {
            let (done, rest) = self.stages.split_at_mut(k);
            let stage = &mut rest[0];
            let input: &[f32] = if k == 0 {
                &self.input_soa
            } else {
                &done[k - 1].out
            };
            // 1. PSP accumulation (first stage may reuse by token).
            let token = if k == 0 { input_token } else { None };
            let reuse = token.is_some() && stage.psp_token == token;
            if !reuse {
                stage.psp.iter_mut().for_each(|p| *p = 0.0);
                layer.synapse().accumulate_batch(input, &mut stage.psp, w)?;
                stage.psp_token = token;
            }
            // 2. Integration.
            for (v, p) in stage.vmem.iter_mut().zip(&stage.psp) {
                *v += p;
            }
            if let Some(bias) = layer.bias() {
                for (vrow, &bb) in stage.vmem.chunks_exact_mut(w).zip(bias) {
                    for v in vrow {
                        *v += bb;
                    }
                }
            }
            // 3–4. Fire, reset, update burst functions, count spikes.
            let counts = &mut spike_counts[(k + 1) * w..(k + 2) * w];
            fire_lanes(
                layer.policy(),
                layer.reset_mode(),
                t,
                &mut stage.vmem,
                &mut stage.g,
                &mut stage.out,
                counts,
                w,
            );
        }
        // Output accumulator: integrate, never fire.
        let last_out: &[f32] = match self.stages.last() {
            Some(s) => &s.out,
            None => &self.input_soa,
        };
        self.out_psp.iter_mut().for_each(|p| *p = 0.0);
        self.template
            .output_synapse()
            .accumulate_batch(last_out, &mut self.out_psp, w)?;
        for (v, p) in self.out_vmem.iter_mut().zip(&self.out_psp) {
            *v += p;
        }
        if let Some(bias) = self.template.output_bias() {
            for (vrow, &bb) in self.out_vmem.chunks_exact_mut(w).zip(bias) {
                for v in vrow {
                    *v += bb;
                }
            }
        }
        Ok(())
    }

    /// One column's output potentials (class scores) as a strided
    /// iterator.
    ///
    /// # Panics
    ///
    /// Panics if `col >= width()`.
    pub fn lane_output_potentials(&self, col: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(col < self.width, "column out of range");
        self.out_vmem.iter().skip(col).step_by(self.width).copied()
    }

    /// Argmax prediction of one column (same tie-breaking as
    /// [`SpikingNetwork::prediction`]).
    pub fn prediction(&self, col: usize) -> usize {
        argmax_last(self.lane_output_potentials(col))
    }

    /// Raw top-2 confidence margin of one column (see
    /// [`crate::StepwiseInference::confidence_margin`]).
    pub fn confidence_margin(&self, col: usize) -> f32 {
        top2_margin(self.lane_output_potentials(col))
    }
}

/// The fire/reset/burst update of one stage across all lanes, batch
/// innermost, reproducing [`crate::SpikingLayer::step`] exactly per
/// lane.
#[allow(clippy::too_many_arguments)]
fn fire_lanes(
    policy: ThresholdPolicy,
    reset: ResetMode,
    t: u64,
    vmem: &mut [f32],
    g: &mut [f32],
    out: &mut [f32],
    counts: &mut [u64],
    width: usize,
) {
    match policy {
        ThresholdPolicy::Fixed { vth } => {
            fire_uniform_threshold(vth, reset, vmem, out, counts, width);
        }
        ThresholdPolicy::Phase { vth, period } => {
            let phase = (t % period as u64) as i32;
            let th = vth * 0.5f32.powi(1 + phase);
            fire_uniform_threshold(th, reset, vmem, out, counts, width);
        }
        ThresholdPolicy::Burst { vth, beta } => {
            for ((vrow, grow), orow) in vmem
                .chunks_exact_mut(width)
                .zip(g.chunks_exact_mut(width))
                .zip(out.chunks_exact_mut(width))
            {
                for l in 0..width {
                    let th = vth * grow[l];
                    let fire = vrow[l] >= th;
                    orow[l] = if fire { th } else { 0.0 };
                    vrow[l] = if fire {
                        match reset {
                            ResetMode::Subtraction => vrow[l] - th,
                            ResetMode::Zero => 0.0,
                        }
                    } else {
                        vrow[l]
                    };
                    // Eq. 8: g ← β·g after a spike, 1 otherwise.
                    grow[l] = if fire { grow[l] * beta } else { 1.0 };
                    counts[l] += fire as u64;
                }
            }
        }
    }
}

/// Fire/reset for policies whose threshold is uniform across neurons
/// and lanes at a given step (fixed and phase).
fn fire_uniform_threshold(
    th: f32,
    reset: ResetMode,
    vmem: &mut [f32],
    out: &mut [f32],
    counts: &mut [u64],
    width: usize,
) {
    for (vrow, orow) in vmem
        .chunks_exact_mut(width)
        .zip(out.chunks_exact_mut(width))
    {
        for l in 0..width {
            let fire = vrow[l] >= th;
            orow[l] = if fire { th } else { 0.0 };
            vrow[l] = if fire {
                match reset {
                    ResetMode::Subtraction => vrow[l] - th,
                    ResetMode::Zero => 0.0,
                }
            } else {
                vrow[l]
            };
            counts[l] += fire as u64;
        }
    }
}

/// Snapshot of a retired lane, taken the moment it left the batch.
#[derive(Debug, Clone)]
struct RetiredLane {
    potentials: Vec<f32>,
}

/// Incremental lockstep inference over a [`BatchedNetwork`]: the batched
/// sibling of [`crate::StepwiseInference`].
///
/// Construction resets the engine, builds one [`InputEncoder`] per lane,
/// and prepares per-lane spike accounting. Each
/// [`advance`](Self::advance) call presents one time step to every live
/// lane; between steps the caller inspects per-lane predictions,
/// margins, and spike counts, and [`retire`](Self::retire)s lanes whose
/// exit condition is met. Retiring snapshots the lane's outputs and
/// compacts its column out of the SoA state: the surviving lanes are
/// unperturbed (bit-exactly), and subsequent steps cost only the
/// reduced width.
///
/// Lane indices are stable: getters always take the *original* lane
/// index, whether the lane is live or retired.
///
/// ```no_run
/// # use bsnn_core::coding::CodingScheme;
/// # use bsnn_core::simulator::EvalConfig;
/// # use bsnn_core::batch::{BatchedNetwork, BatchedStepwiseInference};
/// # fn demo(engine: &mut BatchedNetwork, images: &[&[f32]]) -> Result<(), bsnn_core::SnnError> {
/// let cfg = EvalConfig::new(CodingScheme::recommended(), 256);
/// let mut run = BatchedStepwiseInference::new(engine, images, &cfg)?;
/// while run.advance()? {
///     for lane in 0..run.batch() {
///         if run.is_active(lane) && run.confidence_margin(lane) > 4.0 {
///             run.retire(lane); // anytime early exit, per lane
///         }
///     }
/// }
/// let answers: Vec<usize> = (0..run.batch()).map(|l| run.prediction(l)).collect();
/// # let _ = answers;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchedStepwiseInference<'net> {
    net: &'net mut BatchedNetwork,
    encoders: Vec<InputEncoder>,
    enc_buf: Vec<f32>,
    /// `[layer][lane]` cumulative spike counts by *original* lane index.
    counts: Vec<u64>,
    /// Per-step scratch, `[layer][column]` at the current width.
    step_counts: Vec<u64>,
    /// Steps executed per lane (frozen at retirement).
    lane_steps: Vec<u64>,
    /// Original lane index of each live column, in column order.
    lane_of_col: Vec<usize>,
    /// Live column of each lane (`None` once retired).
    col_of_lane: Vec<Option<usize>>,
    /// Exit snapshots of retired lanes.
    retired: Vec<Option<RetiredLane>>,
    steps: usize,
    t: u64,
    batch: usize,
    input_is_spiking: bool,
    /// `Some(0)` for static (real-coded) drive — forwarded as the
    /// first-stage PSP cache token.
    input_token: Option<u64>,
    /// Whether the static drive is currently staged for every column.
    input_staged: bool,
}

impl<'net> BatchedStepwiseInference<'net> {
    /// Starts a lockstep run over `images` (one lane each): validates
    /// `cfg`, resets the engine via [`BatchedNetwork::begin_batch`], and
    /// builds the per-lane input encoders.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (empty batch, batch wider than the
    /// engine, [`RecordLevel::Trains`] — the lockstep engine records
    /// counts only) and per-image size mismatches.
    pub fn new(
        net: &'net mut BatchedNetwork,
        images: &[&[f32]],
        cfg: &EvalConfig,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        if matches!(cfg.record, RecordLevel::Trains { .. }) {
            return Err(SnnError::InvalidConfig(
                "batched inference records spike counts only".into(),
            ));
        }
        if images.is_empty() {
            return Err(SnnError::InvalidConfig("empty lockstep batch".into()));
        }
        let batch = images.len();
        for image in images {
            if image.len() != net.input_len() {
                return Err(SnnError::InputSizeMismatch {
                    expected: net.input_len(),
                    actual: image.len(),
                });
            }
        }
        net.begin_batch(batch)?;
        let encoders: Vec<InputEncoder> = images
            .iter()
            .map(|image| InputEncoder::new(cfg.scheme.input, image, cfg.phase_period))
            .collect::<Result<_, _>>()?;
        let input_token = encoders[0].is_static().then_some(0);
        let rows = net.spiking_layers();
        Ok(BatchedStepwiseInference {
            enc_buf: vec![0.0; net.input_len()],
            counts: vec![0; rows * batch],
            step_counts: vec![0; rows * batch],
            lane_steps: vec![0; batch],
            lane_of_col: (0..batch).collect(),
            col_of_lane: (0..batch).map(Some).collect(),
            retired: vec![None; batch],
            steps: cfg.steps,
            t: 0,
            batch,
            input_is_spiking: cfg.scheme.input != InputCoding::Real,
            input_token,
            input_staged: false,
            net,
            encoders,
        })
    }

    /// Lockstep width at construction (number of lanes, live + retired).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of still-live lanes.
    pub fn live_lanes(&self) -> usize {
        self.lane_of_col.len()
    }

    /// The configured simulation horizon.
    pub fn horizon(&self) -> usize {
        self.steps
    }

    /// Global steps executed so far (every live lane advances together).
    pub fn steps_taken_global(&self) -> usize {
        self.t as usize
    }

    /// Steps a lane executed before it retired (or so far, if live).
    pub fn steps_taken(&self, lane: usize) -> usize {
        self.lane_steps[lane] as usize
    }

    /// Whether the run is over (horizon reached or every lane retired).
    pub fn is_done(&self) -> bool {
        self.t as usize >= self.steps || self.lane_of_col.is_empty()
    }

    /// Whether a lane is still live.
    pub fn is_active(&self, lane: usize) -> bool {
        self.col_of_lane[lane].is_some()
    }

    /// Retires a lane: snapshots its outputs and compacts its column
    /// out of the batch, shrinking the lockstep width. The surviving
    /// lanes continue bit-exactly as if nothing happened. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn retire(&mut self, lane: usize) {
        let Some(col) = self.col_of_lane[lane] else {
            return; // already retired
        };
        self.retired[lane] = Some(RetiredLane {
            potentials: self.net.lane_output_potentials(col).collect(),
        });
        self.net.remove_lane(col);
        self.lane_of_col.remove(col);
        self.col_of_lane[lane] = None;
        for c in self.col_of_lane.iter_mut().flatten() {
            if *c > col {
                *c -= 1;
            }
        }
        // Columns moved: the static drive must be restaged.
        self.input_staged = false;
    }

    /// Presents one time step to every live lane. Returns `Ok(false)`
    /// without stepping once the horizon is reached or every lane has
    /// retired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn advance(&mut self) -> Result<bool, SnnError> {
        if self.is_done() {
            return Ok(false);
        }
        let t = self.t;
        let width = self.lane_of_col.len();
        let rows = self.net.spiking_layers();
        if self.input_token.is_none() || !self.input_staged {
            for col in 0..width {
                let lane = self.lane_of_col[col];
                let n_in = self.encoders[lane].step(t, &mut self.enc_buf);
                self.net.stage_lane_input(col, &self.enc_buf);
                if self.input_is_spiking {
                    self.counts[lane] += n_in as u64;
                }
            }
            self.input_staged = true;
        }
        let step_counts = &mut self.step_counts[..rows * width];
        step_counts.iter_mut().for_each(|c| *c = 0);
        self.net.step(t, self.input_token, step_counts)?;
        // Fold per-column step counts into the per-lane accumulators.
        for row in 1..rows {
            for col in 0..width {
                let lane = self.lane_of_col[col];
                self.counts[row * self.batch + lane] += self.step_counts[row * width + col];
            }
        }
        for &lane in &self.lane_of_col {
            self.lane_steps[lane] += 1;
        }
        self.t += 1;
        Ok(true)
    }

    /// One lane's output potentials, copied out in class order (the
    /// retirement snapshot for retired lanes).
    pub fn output_potentials(&self, lane: usize) -> Vec<f32> {
        match self.col_of_lane[lane] {
            Some(col) => self.net.lane_output_potentials(col).collect(),
            None => self.retired[lane]
                .as_ref()
                .expect("retired lane has a snapshot")
                .potentials
                .clone(),
        }
    }

    /// One lane's argmax prediction.
    pub fn prediction(&self, lane: usize) -> usize {
        match self.col_of_lane[lane] {
            Some(col) => self.net.prediction(col),
            None => argmax_last(
                self.retired[lane]
                    .as_ref()
                    .expect("retired lane has a snapshot")
                    .potentials
                    .iter()
                    .copied(),
            ),
        }
    }

    /// One lane's raw top-2 confidence margin.
    pub fn confidence_margin(&self, lane: usize) -> f32 {
        match self.col_of_lane[lane] {
            Some(col) => self.net.confidence_margin(col),
            None => top2_margin(
                self.retired[lane]
                    .as_ref()
                    .expect("retired lane has a snapshot")
                    .potentials
                    .iter()
                    .copied(),
            ),
        }
    }

    /// One lane's cumulative spikes across all layers (frozen at
    /// retirement).
    pub fn total_spikes(&self, lane: usize) -> u64 {
        self.counts.iter().skip(lane).step_by(self.batch).sum()
    }

    /// One lane's per-layer cumulative spike counts (layer 0 = input),
    /// matching [`crate::SpikeRecord::layer_counts`].
    pub fn layer_counts(&self, lane: usize) -> Vec<u64> {
        self.counts
            .iter()
            .skip(lane)
            .step_by(self.batch)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{CodingScheme, HiddenCoding};
    use crate::layer::SpikingLayer;
    use crate::synapse::Synapse;
    use bsnn_tensor::Tensor;

    fn identity_synapse(n: usize) -> Synapse {
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 1.0;
        }
        Synapse::Dense {
            weight: Tensor::from_vec(w, &[n, n]).unwrap(),
        }
    }

    fn tiny_network(vth: f32) -> SpikingNetwork {
        let hidden =
            SpikingLayer::new(identity_synapse(2), None, ThresholdPolicy::Fixed { vth }).unwrap();
        SpikingNetwork::new(2, vec![hidden], identity_synapse(2), None).unwrap()
    }

    fn real_rate() -> CodingScheme {
        CodingScheme::new(InputCoding::Real, HiddenCoding::Rate)
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(BatchedNetwork::new(tiny_network(0.5), 0).is_err());
        let mut engine = BatchedNetwork::new(tiny_network(0.5), 2).unwrap();
        assert!(engine.begin_batch(0).is_err());
        assert!(engine.begin_batch(3).is_err());
        assert!(engine.begin_batch(2).is_ok());
        // Stepping needs a correctly sized count matrix.
        assert!(engine.step(0, None, &mut [0u64; 3]).is_err());
        assert!(engine.step(0, None, &mut [0u64; 4]).is_ok());
        // Trains recording is unsupported in lockstep.
        let cfg = EvalConfig::new(real_rate(), 8).with_record(RecordLevel::Trains {
            fraction: 0.5,
            seed: 0,
        });
        let img = [0.5f32, 0.5];
        assert!(BatchedStepwiseInference::new(&mut engine, &[&img], &cfg).is_err());
        // Empty batches and wrong image sizes are rejected.
        let cfg = EvalConfig::new(real_rate(), 8);
        assert!(BatchedStepwiseInference::new(&mut engine, &[], &cfg).is_err());
        let short = [0.5f32];
        assert!(BatchedStepwiseInference::new(&mut engine, &[&short], &cfg).is_err());
    }

    #[test]
    fn step_before_begin_batch_errors() {
        let mut engine = BatchedNetwork::new(tiny_network(0.5), 2).unwrap();
        assert!(engine.step(0, None, &mut []).is_err());
    }

    #[test]
    fn lockstep_lanes_accumulate_independently() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 10);
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&a, &b], &cfg).unwrap();
        while run.advance().unwrap() {}
        assert!(run.is_done());
        assert_eq!(run.steps_taken(0), 10);
        assert_eq!(run.steps_taken(1), 10);
        assert_eq!(run.prediction(0), 0);
        assert_eq!(run.prediction(1), 1);
        assert!(run.total_spikes(0) > 0);
        // Lane 0 only drives neuron 0, lane 1 only neuron 1.
        let p0 = run.output_potentials(0);
        let p1 = run.output_potentials(1);
        assert_eq!(p0[1], 0.0);
        assert_eq!(p1[0], 0.0);
    }

    #[test]
    fn retired_lane_freezes_and_compacts_while_other_continues() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 12);
        let img = [0.9f32, 0.1];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
        for _ in 0..4 {
            assert!(run.advance().unwrap());
        }
        run.retire(0);
        run.retire(0); // idempotent
        assert!(!run.is_active(0));
        assert_eq!(run.live_lanes(), 1);
        let frozen = run.output_potentials(0);
        let frozen_spikes = run.total_spikes(0);
        while run.advance().unwrap() {}
        assert_eq!(run.output_potentials(0), frozen, "retired lane moved");
        assert_eq!(run.total_spikes(0), frozen_spikes);
        assert_eq!(run.steps_taken(0), 4);
        assert_eq!(run.steps_taken(1), 12);
        assert!(run.output_potentials(1)[0] > frozen[0]);
    }

    #[test]
    fn all_lanes_retired_ends_run() {
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 100);
        let img = [0.5f32, 0.5];
        let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
        assert!(run.advance().unwrap());
        run.retire(0);
        run.retire(1);
        assert_eq!(run.live_lanes(), 0);
        assert!(!run.advance().unwrap());
        assert_eq!(run.steps_taken_global(), 1);
    }

    #[test]
    fn repeated_batches_reuse_buffers() {
        // Same engine across batch widths 2 → 1 → 2: state fully resets.
        let mut engine = BatchedNetwork::new(tiny_network(0.25), 2).unwrap();
        let cfg = EvalConfig::new(real_rate(), 6);
        let img = [0.8f32, 0.2];
        let first = {
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
            while run.advance().unwrap() {}
            run.output_potentials(0)
        };
        {
            let other = [0.1f32, 0.9];
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&other], &cfg).unwrap();
            while run.advance().unwrap() {}
            assert_eq!(run.prediction(0), 1);
        }
        let again = {
            let mut run = BatchedStepwiseInference::new(&mut engine, &[&img, &img], &cfg).unwrap();
            while run.advance().unwrap() {}
            run.output_potentials(0)
        };
        assert_eq!(first, again, "stale state leaked across batches");
    }

    #[test]
    fn remove_column_compacts_in_place() {
        let mut buf = vec![
            0.0, 1.0, 2.0, // row 0
            3.0, 4.0, 5.0, // row 1
        ];
        remove_column(&mut buf, 3, 1);
        assert_eq!(buf, vec![0.0, 2.0, 3.0, 5.0]);
        // Removing the only column of a width-1 buffer empties it.
        let mut single = vec![7.0, 8.0];
        remove_column(&mut single, 1, 0);
        assert!(single.is_empty());
    }
}
