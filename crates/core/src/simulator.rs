//! Clock-driven inference: per-image runs, dataset evaluation with
//! accuracy-versus-time-step checkpoints, and latency-to-target queries.
//!
//! Dataset evaluation composes two orthogonal speedups: **threads**
//! (shard the dataset, one network clone per worker) and **lockstep
//! batch** (step several images through one network simultaneously via
//! [`BatchedStepwiseInference`], SIMD over the contiguous lane axis).
//! [`evaluate_dataset_batched`] exposes both knobs; every path produces
//! results bit-identical to the sequential reference
//! [`evaluate_dataset`].

use crate::batch::{BatchedNetwork, BatchedStepwiseInference, DispatchPolicy};
use crate::coding::{CodingScheme, InputCoding};
use crate::encoder::InputEncoder;
use crate::network::SpikingNetwork;
use crate::recorder::{RecordLevel, SpikeRecord, SpikeTrainRec};
use crate::SnnError;
use bsnn_data::ImageDataset;

/// Parameters of a simulation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// The hybrid coding scheme (input coding drives the encoder; the
    /// hidden coding must match what the network was converted with —
    /// it is carried here for reporting).
    pub scheme: CodingScheme,
    /// Simulation horizon in time steps.
    pub steps: usize,
    /// Time steps (1-based) at which predictions and cumulative spike
    /// counts are sampled. Must be increasing; the last entry should be
    /// `steps`.
    pub checkpoints: Vec<usize>,
    /// Phase period `k` for phase input coding.
    pub phase_period: u32,
    /// Recording detail.
    pub record: RecordLevel,
    /// Evaluate at most this many images of the dataset.
    pub max_images: Option<usize>,
}

impl EvalConfig {
    /// A config sampling only at the final step.
    pub fn new(scheme: CodingScheme, steps: usize) -> Self {
        EvalConfig {
            scheme,
            steps,
            checkpoints: vec![steps],
            phase_period: 8,
            record: RecordLevel::Counts,
            max_images: None,
        }
    }

    /// Samples every `every` steps (and at the final step).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        let every = every.max(1);
        let mut cps: Vec<usize> = (every..=self.steps).step_by(every).collect();
        if cps.last() != Some(&self.steps) {
            cps.push(self.steps);
        }
        self.checkpoints = cps;
        self
    }

    /// Caps the number of evaluated images.
    pub fn with_max_images(mut self, n: usize) -> Self {
        self.max_images = Some(n);
        self
    }

    /// Sets the recording level.
    pub fn with_record(mut self, record: RecordLevel) -> Self {
        self.record = record;
        self
    }

    /// Sets the input phase period.
    pub fn with_phase_period(mut self, k: u32) -> Self {
        self.phase_period = k;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), SnnError> {
        if self.steps == 0 {
            return Err(SnnError::InvalidConfig("steps must be nonzero".into()));
        }
        if self.checkpoints.is_empty() {
            return Err(SnnError::InvalidConfig("no checkpoints".into()));
        }
        if self.checkpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnnError::InvalidConfig(
                "checkpoints must be strictly increasing".into(),
            ));
        }
        if *self.checkpoints.last().expect("nonempty") > self.steps {
            return Err(SnnError::InvalidConfig(
                "checkpoint beyond simulation horizon".into(),
            ));
        }
        Ok(())
    }
}

/// Result of presenting one image.
#[derive(Debug, Clone)]
pub struct ImageResult {
    /// The sampled time steps (copied from the config).
    pub checkpoints: Vec<usize>,
    /// Predicted class at each checkpoint.
    pub predictions: Vec<usize>,
    /// Cumulative spike count (all layers) at each checkpoint.
    pub cum_spikes: Vec<u64>,
    /// Full spike record of the run.
    pub record: SpikeRecord,
}

/// Incremental single-image inference: the inner loop of [`infer_image`]
/// exposed one time step at a time.
///
/// Constructing a `StepwiseInference` resets the network and prepares the
/// input encoder; each [`advance`](StepwiseInference::advance) call then
/// presents one time step. Between steps the caller can inspect the
/// running prediction, the output confidence margin, and the cumulative
/// spike count — the hooks an *anytime* consumer (e.g. the `burst-serve`
/// runtime) needs to stop a run as soon as its answer is good enough,
/// which is exactly the latency/accuracy trade-off the paper's
/// accuracy-versus-time-step curves quantify.
///
/// Driving `advance` until it returns `Ok(false)` reproduces
/// [`infer_image`] step for step; `infer_image` itself is implemented on
/// top of this type.
///
/// ```no_run
/// # use bsnn_core::coding::CodingScheme;
/// # use bsnn_core::simulator::{EvalConfig, StepwiseInference};
/// # fn demo(net: &mut bsnn_core::SpikingNetwork, image: &[f32]) -> Result<(), bsnn_core::SnnError> {
/// let cfg = EvalConfig::new(CodingScheme::recommended(), 256);
/// let mut run = StepwiseInference::new(net, image, &cfg)?;
/// while run.advance()? {
///     if run.confidence_margin() > 4.0 {
///         break; // anytime early exit
///     }
/// }
/// let answer = run.prediction();
/// # let _ = answer;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StepwiseInference<'net> {
    net: &'net mut SpikingNetwork,
    encoder: InputEncoder,
    record: SpikeRecord,
    buf: Vec<f32>,
    steps: usize,
    t: u64,
    record_input_trains: bool,
    input_is_spiking: bool,
    /// Period `p` of the encoder's drive, when it is a pure function of
    /// `t mod p` (real coding: `p = 1`; phase/TTFS: the period/window).
    /// The first stage's PSP cache is keyed by `t mod p`, so after the
    /// first period every step replays a cached PSP instead of running
    /// the synapse. `None` (stateful rate coding, or a period beyond
    /// the layer's slot budget) disables caching.
    input_period: Option<u64>,
}

impl<'net> StepwiseInference<'net> {
    /// Starts an incremental run: validates `cfg`, resets the network's
    /// dynamic state in place, and builds the per-image input encoder.
    ///
    /// # Errors
    ///
    /// Returns configuration and size-mismatch errors.
    pub fn new(
        net: &'net mut SpikingNetwork,
        image: &[f32],
        cfg: &EvalConfig,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        if image.len() != net.input_len() {
            return Err(SnnError::InputSizeMismatch {
                expected: net.input_len(),
                actual: image.len(),
            });
        }
        net.reset_state();
        let encoder = InputEncoder::new(cfg.scheme.input, image, cfg.phase_period)?;
        let record = SpikeRecord::new(&net.spiking_layer_sizes(), cfg.record);
        let record_input_trains = matches!(cfg.record, RecordLevel::Trains { .. })
            && cfg.scheme.input != InputCoding::Real;
        let input_is_spiking = cfg.scheme.input != InputCoding::Real;
        // Cache first-stage PSPs per `t mod p` when the drive is
        // periodic and the period fits the layer's 32-slot budget.
        let input_period = encoder.period().map(u64::from).filter(|&p| p <= 32);
        let buf = vec![0.0f32; net.input_len()];
        Ok(StepwiseInference {
            net,
            encoder,
            record,
            buf,
            steps: cfg.steps,
            t: 0,
            record_input_trains,
            input_is_spiking,
            input_period,
        })
    }

    /// Presents one time step. Returns `Ok(false)` once the configured
    /// horizon has been reached (the network state is left as of the last
    /// executed step).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn advance(&mut self) -> Result<bool, SnnError> {
        if self.t as usize >= self.steps {
            return Ok(false);
        }
        let t = self.t;
        let n_in = self.encoder.step(t, &mut self.buf);
        if self.record_input_trains {
            self.record.observe_layer(0, t, &self.buf);
        } else if self.input_is_spiking {
            self.record.add_count(0, n_in as u64);
        }
        self.net.step_with_token(
            &self.buf,
            t,
            &mut self.record,
            self.input_period.map(|p| t % p),
        )?;
        self.record.end_step();
        self.t += 1;
        Ok(true)
    }

    /// Number of time steps executed so far.
    pub fn steps_taken(&self) -> usize {
        self.t as usize
    }

    /// The configured simulation horizon.
    pub fn horizon(&self) -> usize {
        self.steps
    }

    /// Whether the horizon has been reached.
    pub fn is_done(&self) -> bool {
        self.t as usize >= self.steps
    }

    /// The running argmax prediction over the output potentials.
    pub fn prediction(&self) -> usize {
        self.net.prediction()
    }

    /// The output accumulator's membrane potentials (class scores).
    pub fn output_potentials(&self) -> &[f32] {
        self.net.output_potentials()
    }

    /// Cumulative spikes across all layers so far.
    pub fn total_spikes(&self) -> u64 {
        self.record.total_spikes()
    }

    /// Raw confidence margin: the gap between the top and runner-up
    /// output potentials. Grows roughly linearly with elapsed steps on a
    /// confidently classified input, so anytime consumers typically
    /// normalize it by [`steps_taken`](Self::steps_taken). Returns
    /// `f32::INFINITY` for single-class networks.
    pub fn confidence_margin(&self) -> f32 {
        crate::network::top2_margin(self.net.output_potentials().iter().copied())
    }

    /// Read-only view of the spike record accumulated so far.
    pub fn record(&self) -> &SpikeRecord {
        &self.record
    }

    /// Finishes the run, returning the accumulated spike record.
    pub fn into_record(self) -> SpikeRecord {
        self.record
    }
}

/// Presents a single image to the network for `cfg.steps` steps.
///
/// The network is reset first; afterwards its output potentials reflect
/// the full run. Implemented on [`StepwiseInference`]; the results are
/// step-for-step identical to driving that API manually.
///
/// # Errors
///
/// Returns configuration and size-mismatch errors.
pub fn infer_image(
    net: &mut SpikingNetwork,
    image: &[f32],
    cfg: &EvalConfig,
) -> Result<ImageResult, SnnError> {
    let mut run = StepwiseInference::new(net, image, cfg)?;
    let mut predictions = Vec::with_capacity(cfg.checkpoints.len());
    let mut cum_spikes = Vec::with_capacity(cfg.checkpoints.len());
    let mut next_cp = 0usize;
    while run.advance()? {
        if next_cp < cfg.checkpoints.len() && run.steps_taken() == cfg.checkpoints[next_cp] {
            predictions.push(run.prediction());
            cum_spikes.push(run.total_spikes());
            next_cp += 1;
        }
    }
    Ok(ImageResult {
        checkpoints: cfg.checkpoints.clone(),
        predictions,
        cum_spikes,
        record: run.into_record(),
    })
}

/// Aggregate result of evaluating a dataset.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The coding scheme evaluated (for reporting).
    pub scheme: CodingScheme,
    /// Sampled time steps.
    pub checkpoints: Vec<usize>,
    /// Classification accuracy at each checkpoint.
    pub accuracy_at: Vec<f64>,
    /// Mean cumulative spikes per image at each checkpoint.
    pub mean_spikes_at: Vec<f64>,
    /// Number of images evaluated.
    pub num_images: usize,
    /// Total neurons in the network (input + hidden + output).
    pub num_neurons: usize,
    /// Total spikes per layer, summed over all images, full horizon.
    pub layer_counts: Vec<u64>,
}

impl EvalResult {
    /// Accuracy at the final checkpoint.
    pub fn final_accuracy(&self) -> f64 {
        *self.accuracy_at.last().unwrap_or(&0.0)
    }

    /// Mean spikes per image at the final checkpoint.
    pub fn final_mean_spikes(&self) -> f64 {
        *self.mean_spikes_at.last().unwrap_or(&0.0)
    }

    /// The first checkpoint whose accuracy reaches `target`, with the
    /// mean spikes per image accumulated by then. `None` if never
    /// reached.
    pub fn latency_to(&self, target: f64) -> Option<(usize, f64)> {
        self.accuracy_at
            .iter()
            .position(|&a| a >= target)
            .map(|i| (self.checkpoints[i], self.mean_spikes_at[i]))
    }

    /// Spiking density at a checkpoint index: mean spikes per image per
    /// neuron per time step (the paper's Table 2 metric).
    pub fn spiking_density_at(&self, checkpoint_index: usize) -> f64 {
        let t = self.checkpoints[checkpoint_index] as f64;
        self.mean_spikes_at[checkpoint_index] / (self.num_neurons as f64 * t)
    }

    /// Spiking density at the final checkpoint.
    pub fn final_spiking_density(&self) -> f64 {
        self.spiking_density_at(self.checkpoints.len() - 1)
    }
}

/// Evaluates the network over (a prefix of) a dataset.
///
/// # Errors
///
/// Propagates per-image simulation errors.
pub fn evaluate_dataset(
    net: &mut SpikingNetwork,
    dataset: &ImageDataset,
    cfg: &EvalConfig,
) -> Result<EvalResult, SnnError> {
    cfg.validate()?;
    let n_images = cfg
        .max_images
        .map_or(dataset.len(), |m| m.min(dataset.len()));
    if n_images == 0 {
        return Err(SnnError::InvalidConfig("no images to evaluate".into()));
    }
    let mut correct = vec![0usize; cfg.checkpoints.len()];
    let mut spikes = vec![0u64; cfg.checkpoints.len()];
    let mut layer_counts = vec![0u64; net.spiking_layer_sizes().len()];
    for i in 0..n_images {
        let result = infer_image(net, dataset.image(i), cfg)?;
        let label = dataset.label(i);
        for (c, &p) in result.predictions.iter().enumerate() {
            if p == label {
                correct[c] += 1;
            }
        }
        for (s, &cs) in result.cum_spikes.iter().enumerate() {
            spikes[s] += cs;
        }
        for (lc, &c) in layer_counts.iter_mut().zip(result.record.layer_counts()) {
            *lc += c;
        }
    }
    Ok(EvalResult {
        scheme: cfg.scheme,
        checkpoints: cfg.checkpoints.clone(),
        accuracy_at: correct
            .iter()
            .map(|&c| c as f64 / n_images as f64)
            .collect(),
        mean_spikes_at: spikes.iter().map(|&s| s as f64 / n_images as f64).collect(),
        num_images: n_images,
        num_neurons: net.num_neurons(),
        layer_counts,
    })
}

/// Per-worker partial sums: correct@checkpoint, spikes@checkpoint,
/// per-layer counts.
type PartialSums = (Vec<usize>, Vec<u64>, Vec<u64>);

/// Evaluates images `lo..hi` against `net`, accumulating checkpointed
/// partial sums — the shared body of every dataset-evaluation path.
///
/// Every width (including 1) drives a [`BatchedStepwiseInference`] in
/// lockstep chunks of up to `batch` lanes, so the engine the
/// autotuner's width-1 probe measures is the engine that actually runs.
/// Spike-train recording is only supported by the scalar engine, so
/// [`RecordLevel::Trains`] configs replay the scalar [`infer_image`]
/// loop instead (`EvalResult` carries counts either way, and per-lane
/// lockstep results are bit-identical to scalar runs, so the choice
/// never changes the outcome — only the wall-clock).
fn eval_range(
    net: &SpikingNetwork,
    dataset: &ImageDataset,
    cfg: &EvalConfig,
    lo: usize,
    hi: usize,
    batch: usize,
    dispatch: &DispatchPolicy,
) -> Result<PartialSums, SnnError> {
    let mut correct = vec![0usize; cfg.checkpoints.len()];
    let mut spikes = vec![0u64; cfg.checkpoints.len()];
    let mut layer_counts = vec![0u64; net.spiking_layer_sizes().len()];
    if matches!(cfg.record, RecordLevel::Trains { .. }) {
        let mut local = net.clone();
        for i in lo..hi {
            let result = infer_image(&mut local, dataset.image(i), cfg)?;
            let label = dataset.label(i);
            for (c, &p) in result.predictions.iter().enumerate() {
                if p == label {
                    correct[c] += 1;
                }
            }
            for (s, &cs) in result.cum_spikes.iter().enumerate() {
                spikes[s] += cs;
            }
            for (lc, &c) in layer_counts.iter_mut().zip(result.record.layer_counts()) {
                *lc += c;
            }
        }
        return Ok((correct, spikes, layer_counts));
    }
    let batch = batch.max(1);
    // The engine is sized for the *padded* width so ragged tail chunks
    // (and ragged user-chosen widths) can run the fixed-width kernels
    // with dead lanes instead of the slower dynamic dense path.
    let mut engine =
        BatchedNetwork::new(net.clone(), crate::batch::padded_width(batch.min(hi - lo)))?;
    engine.set_dispatch(dispatch.clone());
    let mut start = lo;
    while start < hi {
        let width = batch.min(hi - start);
        let images: Vec<&[f32]> = (start..start + width).map(|i| dataset.image(i)).collect();
        let mut run = BatchedStepwiseInference::new_padded(&mut engine, &images, cfg)?;
        // No lane retires, so every lane hits each checkpoint together.
        let mut next_cp = 0usize;
        while run.advance()? {
            if next_cp < cfg.checkpoints.len()
                && run.steps_taken_global() == cfg.checkpoints[next_cp]
            {
                for lane in 0..width {
                    if run.prediction(lane) == dataset.label(start + lane) {
                        correct[next_cp] += 1;
                    }
                    spikes[next_cp] += run.total_spikes(lane);
                }
                next_cp += 1;
            }
        }
        for lane in 0..width {
            for (lc, c) in layer_counts.iter_mut().zip(run.layer_counts(lane)) {
                *lc += c;
            }
        }
        start += width;
    }
    Ok((correct, spikes, layer_counts))
}

/// Evaluates the network over (a prefix of) a dataset with `threads`
/// workers, each stepping lockstep batches of up to `batch` images
/// through its own [`BatchedNetwork`] — the `threads × batch`
/// composition of the two dataset-evaluation speedups. Results are
/// **bit-identical** to [`evaluate_dataset`] (per-image lockstep
/// simulation is bit-exact versus sequential, and images are
/// independent).
///
/// `threads <= 1` evaluates on the calling thread; `batch <= 1` runs
/// the lockstep engine at width 1 (which slightly beats the scalar
/// loop — and is exactly what the autotuner's width-1 probe measures).
/// Ragged widths — a non-{1, 2, 4, 8, 16} `batch`, or the tail chunk of
/// a shard — are padded to the next fixed lane width with dead lanes
/// ([`BatchedStepwiseInference::new_padded`]), which beats the dynamic
/// dense path those widths would otherwise take; results are unchanged.
/// The best `batch` is model-dependent — measure it with
/// [`crate::autotune::autotune_batch`] rather than hardcoding (conv
/// nets want 8–16, small dense nets historically wanted 1; with density
/// dispatch they win at wide batches too).
///
/// # Errors
///
/// Propagates configuration and simulation errors from any worker.
pub fn evaluate_dataset_batched(
    net: &SpikingNetwork,
    dataset: &ImageDataset,
    cfg: &EvalConfig,
    threads: usize,
    batch: usize,
) -> Result<EvalResult, SnnError> {
    evaluate_dataset_batched_with_dispatch(
        net,
        dataset,
        cfg,
        threads,
        batch,
        &DispatchPolicy::default(),
    )
}

/// [`evaluate_dataset_batched`] with an explicit kernel-dispatch policy
/// installed into every worker's engine — pass the model's calibrated
/// [`crate::autotune::BatchPolicy::density_thresholds`] so the
/// sparse/dense decision runs at the measured crossovers instead of the
/// conservative default. Dispatch never changes results, only
/// wall-clock.
///
/// # Errors
///
/// Propagates configuration and simulation errors from any worker.
pub fn evaluate_dataset_batched_with_dispatch(
    net: &SpikingNetwork,
    dataset: &ImageDataset,
    cfg: &EvalConfig,
    threads: usize,
    batch: usize,
    dispatch: &DispatchPolicy,
) -> Result<EvalResult, SnnError> {
    cfg.validate()?;
    let n_images = cfg
        .max_images
        .map_or(dataset.len(), |m| m.min(dataset.len()));
    if n_images == 0 {
        return Err(SnnError::InvalidConfig("no images to evaluate".into()));
    }
    let threads = threads.clamp(1, n_images);
    let results: Vec<Result<PartialSums, SnnError>> = if threads == 1 {
        vec![eval_range(net, dataset, cfg, 0, n_images, batch, dispatch)]
    } else {
        let chunk = n_images.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n_images);
                if lo >= hi {
                    break;
                }
                handles.push(
                    scope.spawn(move || eval_range(net, dataset, cfg, lo, hi, batch, dispatch)),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    };

    let mut correct = vec![0usize; cfg.checkpoints.len()];
    let mut spikes = vec![0u64; cfg.checkpoints.len()];
    let mut layer_counts = vec![0u64; net.spiking_layer_sizes().len()];
    for r in results {
        let (c, s, lc) = r?;
        for (a, b) in correct.iter_mut().zip(&c) {
            *a += b;
        }
        for (a, b) in spikes.iter_mut().zip(&s) {
            *a += b;
        }
        for (a, b) in layer_counts.iter_mut().zip(&lc) {
            *a += b;
        }
    }
    Ok(EvalResult {
        scheme: cfg.scheme,
        checkpoints: cfg.checkpoints.clone(),
        accuracy_at: correct
            .iter()
            .map(|&c| c as f64 / n_images as f64)
            .collect(),
        mean_spikes_at: spikes.iter().map(|&s| s as f64 / n_images as f64).collect(),
        num_images: n_images,
        num_neurons: net.num_neurons(),
        layer_counts,
    })
}

/// Evaluates the network over (a prefix of) a dataset using `threads`
/// worker threads, each with its own clone of the network — the
/// `batch = 1` case of [`evaluate_dataset_batched`]. Results are
/// bit-identical to [`evaluate_dataset`].
///
/// `threads = 0` or `1` evaluates on the calling thread.
///
/// # Errors
///
/// Propagates per-image simulation errors from any worker.
pub fn evaluate_dataset_parallel(
    net: &SpikingNetwork,
    dataset: &ImageDataset,
    cfg: &EvalConfig,
    threads: usize,
) -> Result<EvalResult, SnnError> {
    evaluate_dataset_batched(net, dataset, cfg, threads, 1)
}

/// Runs one image with full spike-train recording — the data source for
/// ISI histograms (Fig. 1-C) and the firing rate/regularity analysis
/// (Fig. 5). Samples `fraction` of the neurons in every layer, as in the
/// paper's Section 5 protocol (they sample 10%).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn record_spike_trains(
    net: &mut SpikingNetwork,
    image: &[f32],
    scheme: CodingScheme,
    steps: usize,
    fraction: f64,
    seed: u64,
) -> Result<Vec<SpikeTrainRec>, SnnError> {
    let cfg = EvalConfig::new(scheme, steps).with_record(RecordLevel::Trains { fraction, seed });
    let result = infer_image(net, image, &cfg)?;
    Ok(result.record.into_trains())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::HiddenCoding;
    use crate::convert::{convert, ConversionConfig};
    use bsnn_data::SynthSpec;
    use bsnn_dnn::models;
    use bsnn_dnn::train::{TrainConfig, Trainer};

    fn trained_setup() -> (
        bsnn_dnn::Sequential,
        bsnn_data::ImageDataset,
        bsnn_data::ImageDataset,
    ) {
        let (train, test) = SynthSpec::digits().with_counts(30, 6).generate();
        let mut dnn = models::mlp(144, &[32], 10, 5).unwrap();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 30,
            lr: 2e-3,
            ..TrainConfig::default()
        };
        Trainer::new(cfg).fit(&mut dnn, &train, &test).unwrap();
        (dnn, train, test)
    }

    fn snn_for(
        dnn: &mut bsnn_dnn::Sequential,
        train: &bsnn_data::ImageDataset,
        scheme: CodingScheme,
    ) -> crate::SpikingNetwork {
        let idx: Vec<usize> = (0..20.min(train.len())).collect();
        let (batch, _) = train.batch(&idx);
        convert(dnn, &batch, &ConversionConfig::new(scheme)).unwrap()
    }

    #[test]
    fn rate_snn_approaches_dnn_accuracy() {
        let (mut dnn, train, test) = trained_setup();
        let dnn_acc = bsnn_dnn::train::evaluate(&mut dnn, &test, 32).unwrap();
        let mut snn = snn_for(
            &mut dnn,
            &train,
            CodingScheme::new(InputCoding::Real, HiddenCoding::Rate),
        );
        let cfg = EvalConfig::new(
            CodingScheme::new(InputCoding::Real, HiddenCoding::Rate),
            300,
        )
        .with_max_images(40);
        let eval = evaluate_dataset(&mut snn, &test, &cfg).unwrap();
        assert!(
            eval.final_accuracy() >= dnn_acc - 0.15,
            "snn {:.3} vs dnn {:.3}",
            eval.final_accuracy(),
            dnn_acc
        );
    }

    #[test]
    fn burst_snn_matches_dnn_quickly() {
        let (mut dnn, train, test) = trained_setup();
        let dnn_acc = bsnn_dnn::train::evaluate(&mut dnn, &test, 32).unwrap();
        let mut snn = snn_for(&mut dnn, &train, CodingScheme::recommended());
        let cfg = EvalConfig::new(CodingScheme::recommended(), 64).with_max_images(40);
        let eval = evaluate_dataset(&mut snn, &test, &cfg).unwrap();
        assert!(
            eval.final_accuracy() >= dnn_acc - 0.15,
            "snn {:.3} vs dnn {:.3}",
            eval.final_accuracy(),
            dnn_acc
        );
    }

    #[test]
    fn checkpoints_accumulate_monotonically() {
        let (mut dnn, train, test) = trained_setup();
        let mut snn = snn_for(&mut dnn, &train, CodingScheme::recommended());
        let cfg = EvalConfig::new(CodingScheme::recommended(), 60)
            .with_checkpoint_every(15)
            .with_max_images(5);
        let eval = evaluate_dataset(&mut snn, &test, &cfg).unwrap();
        assert_eq!(eval.checkpoints, vec![15, 30, 45, 60]);
        for w in eval.mean_spikes_at.windows(2) {
            assert!(w[0] <= w[1], "spike counts must be cumulative");
        }
    }

    #[test]
    fn latency_to_returns_first_checkpoint() {
        let r = EvalResult {
            scheme: CodingScheme::recommended(),
            checkpoints: vec![10, 20, 30],
            accuracy_at: vec![0.2, 0.8, 0.9],
            mean_spikes_at: vec![5.0, 9.0, 12.0],
            num_images: 1,
            num_neurons: 100,
            layer_counts: vec![],
        };
        assert_eq!(r.latency_to(0.75), Some((20, 9.0)));
        assert_eq!(r.latency_to(0.95), None);
        assert!((r.final_spiking_density() - 12.0 / 3000.0).abs() < 1e-12);
    }

    /// The seed implementation of `infer_image`, verbatim, before its
    /// inner loop was extracted into `StepwiseInference`. Kept as the
    /// reference for the step-for-step equivalence test below.
    fn infer_image_seed(
        net: &mut SpikingNetwork,
        image: &[f32],
        cfg: &EvalConfig,
    ) -> Result<ImageResult, SnnError> {
        cfg.validate()?;
        if image.len() != net.input_len() {
            return Err(SnnError::InputSizeMismatch {
                expected: net.input_len(),
                actual: image.len(),
            });
        }
        net.reset();
        let mut encoder = InputEncoder::new(cfg.scheme.input, image, cfg.phase_period)?;
        // (The seed enabled first-stage PSP caching here; caching is now
        // governed by the input-generation token and never changes
        // values, so the replica stays step-for-step equivalent.)
        let mut record = SpikeRecord::new(&net.spiking_layer_sizes(), cfg.record);
        let record_input_trains = matches!(cfg.record, RecordLevel::Trains { .. })
            && cfg.scheme.input != InputCoding::Real;

        let mut buf = vec![0.0f32; net.input_len()];
        let mut predictions = Vec::with_capacity(cfg.checkpoints.len());
        let mut cum_spikes = Vec::with_capacity(cfg.checkpoints.len());
        let mut next_cp = 0usize;
        for t in 0..cfg.steps as u64 {
            let n_in = encoder.step(t, &mut buf);
            if record_input_trains {
                record.observe_layer(0, t, &buf);
            } else if cfg.scheme.input != InputCoding::Real {
                record.add_count(0, n_in as u64);
            }
            net.step(&buf, t, &mut record)?;
            record.end_step();
            if next_cp < cfg.checkpoints.len() && (t + 1) as usize == cfg.checkpoints[next_cp] {
                predictions.push(net.prediction());
                cum_spikes.push(record.total_spikes());
                next_cp += 1;
            }
        }
        Ok(ImageResult {
            checkpoints: cfg.checkpoints.clone(),
            predictions,
            cum_spikes,
            record,
        })
    }

    #[test]
    fn stepwise_rebuild_matches_seed_path_exactly() {
        let (mut dnn, train, test) = trained_setup();
        // Phase and TTFS inputs exercise the periodic first-stage PSP
        // cache (token = t mod period) against the seed's uncached
        // per-step synapse pass; real input exercises the static token.
        for scheme in [
            CodingScheme::recommended(),
            CodingScheme::new(InputCoding::Real, HiddenCoding::Rate),
            CodingScheme::new(InputCoding::Rate, HiddenCoding::Phase),
            CodingScheme::new(InputCoding::Ttfs, HiddenCoding::Burst),
        ] {
            let mut snn = snn_for(&mut dnn, &train, scheme);
            for record in [
                RecordLevel::Counts,
                RecordLevel::Trains {
                    fraction: 0.5,
                    seed: 3,
                },
            ] {
                let cfg = EvalConfig::new(scheme, 40)
                    .with_checkpoint_every(7)
                    .with_record(record);
                for i in 0..3 {
                    let a = infer_image_seed(&mut snn, test.image(i), &cfg).unwrap();
                    let pot_seed = snn.output_potentials().to_vec();
                    let b = infer_image(&mut snn, test.image(i), &cfg).unwrap();
                    assert_eq!(a.checkpoints, b.checkpoints, "{scheme}");
                    assert_eq!(a.predictions, b.predictions, "{scheme}");
                    assert_eq!(a.cum_spikes, b.cum_spikes, "{scheme}");
                    assert_eq!(a.record.layer_counts(), b.record.layer_counts(), "{scheme}");
                    assert_eq!(a.record.steps(), b.record.steps(), "{scheme}");
                    assert_eq!(a.record.trains(), b.record.trains(), "{scheme}");
                    assert_eq!(pot_seed, snn.output_potentials(), "{scheme}");
                }
            }
        }
    }

    #[test]
    fn stepwise_exposes_anytime_signals() {
        let (mut dnn, train, test) = trained_setup();
        let scheme = CodingScheme::recommended();
        let mut snn = snn_for(&mut dnn, &train, scheme);
        let cfg = EvalConfig::new(scheme, 32);
        let mut run = StepwiseInference::new(&mut snn, test.image(0), &cfg).unwrap();
        assert_eq!(run.steps_taken(), 0);
        assert_eq!(run.horizon(), 32);
        assert!(!run.is_done());
        let mut spikes_last = 0u64;
        while run.advance().unwrap() {
            assert!(run.total_spikes() >= spikes_last, "spikes are cumulative");
            spikes_last = run.total_spikes();
            let m = run.confidence_margin();
            assert!(m >= 0.0, "margin is a nonnegative gap, got {m}");
        }
        assert!(run.is_done());
        assert_eq!(run.steps_taken(), 32);
        assert!(!run.advance().unwrap(), "advance past horizon is a no-op");
        assert_eq!(run.record().steps(), 32);
        let pred = run.prediction();
        assert!(pred < 10);
    }

    #[test]
    fn latency_to_edge_cases() {
        let base = EvalResult {
            scheme: CodingScheme::recommended(),
            checkpoints: vec![10, 20, 30],
            accuracy_at: vec![0.2, 0.5, 0.9],
            mean_spikes_at: vec![5.0, 9.0, 12.0],
            num_images: 1,
            num_neurons: 100,
            layer_counts: vec![],
        };
        // Target above the final accuracy: never reached.
        assert_eq!(base.latency_to(0.91), None);
        // Target hit exactly at the last checkpoint (>= comparison).
        assert_eq!(base.latency_to(0.9), Some((30, 12.0)));
        // Empty checkpoint list: no checkpoint can satisfy any target.
        let empty = EvalResult {
            checkpoints: vec![],
            accuracy_at: vec![],
            mean_spikes_at: vec![],
            ..base
        };
        assert_eq!(empty.latency_to(0.0), None);
        assert_eq!(empty.final_accuracy(), 0.0);
        assert_eq!(empty.final_mean_spikes(), 0.0);
    }

    #[test]
    fn record_spike_trains_samples_all_layers() {
        let (mut dnn, train, test) = trained_setup();
        let mut snn = snn_for(&mut dnn, &train, CodingScheme::recommended());
        let trains = record_spike_trains(
            &mut snn,
            test.image(0),
            CodingScheme::recommended(),
            50,
            1.0,
            0,
        )
        .unwrap();
        // input layer (144) + hidden (32) all sampled
        assert_eq!(trains.len(), 144 + 32);
        assert!(trains.iter().any(|t| !t.times.is_empty()));
    }

    #[test]
    fn ttfs_input_reaches_dnn_accuracy() {
        let (mut dnn, train, test) = trained_setup();
        let dnn_acc = bsnn_dnn::train::evaluate(&mut dnn, &test, 32).unwrap();
        let scheme = CodingScheme::new(InputCoding::Ttfs, crate::coding::HiddenCoding::Burst);
        let mut snn = snn_for(&mut dnn, &train, scheme);
        let cfg = EvalConfig::new(scheme, 256).with_max_images(40);
        let eval = evaluate_dataset(&mut snn, &test, &cfg).unwrap();
        assert!(
            eval.final_accuracy() >= dnn_acc - 0.15,
            "ttfs-burst {:.3} vs dnn {:.3}",
            eval.final_accuracy(),
            dnn_acc
        );
    }

    #[test]
    fn reset_to_zero_degrades_accuracy() {
        let (mut dnn, train, test) = trained_setup();
        let scheme = CodingScheme::recommended();
        let idx: Vec<usize> = (0..20).collect();
        let (batch, _) = train.batch(&idx);
        let mut sub = convert(&mut dnn, &batch, &ConversionConfig::new(scheme)).unwrap();
        let mut zero = convert(
            &mut dnn,
            &batch,
            &ConversionConfig::new(scheme).with_reset_mode(crate::ResetMode::Zero),
        )
        .unwrap();
        let cfg = EvalConfig::new(scheme, 192).with_max_images(40);
        let acc_sub = evaluate_dataset(&mut sub, &test, &cfg)
            .unwrap()
            .final_accuracy();
        let acc_zero = evaluate_dataset(&mut zero, &test, &cfg)
            .unwrap()
            .final_accuracy();
        assert!(
            acc_sub > acc_zero,
            "subtraction {acc_sub:.3} should beat reset-to-zero {acc_zero:.3}"
        );
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (mut dnn, train, test) = trained_setup();
        let mut snn = snn_for(&mut dnn, &train, CodingScheme::recommended());
        let cfg = EvalConfig::new(CodingScheme::recommended(), 48)
            .with_checkpoint_every(16)
            .with_max_images(17); // odd count exercises uneven chunks
        let seq = evaluate_dataset(&mut snn, &test, &cfg).unwrap();
        let par = super::evaluate_dataset_parallel(&snn, &test, &cfg, 4).unwrap();
        assert_eq!(seq.accuracy_at, par.accuracy_at);
        assert_eq!(seq.mean_spikes_at, par.mean_spikes_at);
        assert_eq!(seq.layer_counts, par.layer_counts);
        // threads = 1 falls back to the sequential path
        let one = super::evaluate_dataset_parallel(&snn, &test, &cfg, 1).unwrap();
        assert_eq!(seq.accuracy_at, one.accuracy_at);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (mut dnn, train, test) = trained_setup();
        let mut snn = snn_for(
            &mut dnn,
            &train,
            CodingScheme::new(InputCoding::Real, HiddenCoding::Rate),
        );
        let mut cfg = EvalConfig::new(CodingScheme::recommended(), 10);
        cfg.checkpoints = vec![5, 20];
        assert!(evaluate_dataset(&mut snn, &test, &cfg).is_err());
        let mut cfg = EvalConfig::new(CodingScheme::recommended(), 0);
        cfg.steps = 0;
        assert!(evaluate_dataset(&mut snn, &test, &cfg).is_err());
    }
}
