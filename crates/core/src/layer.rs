//! Spiking layers: integrate-and-fire neurons with pluggable threshold
//! policies (rate / phase / burst).
//!
//! ## Dynamics (paper Eqs. 2, 4, 5, 8, 9)
//!
//! Each step `t`, a layer:
//!
//! 1. accumulates PSPs: `V_mem += Σ_i w_ij · s_i(t) + b_j` where `s_i` is
//!    the presynaptic spike magnitude (Eq. 5 — the magnitude *is* the
//!    presynaptic threshold at fire time, making the effective weight
//!    `w·V_th(t)`),
//! 2. computes its threshold `V_th,j(t)` from the policy,
//! 3. fires where `V_mem ≥ V_th`, emitting magnitude `V_th,j(t)` and
//!    resetting by subtraction (Eq. 4) — or to zero (Eq. 3) when the
//!    [`ResetMode::Zero`] ablation is selected, and
//! 4. (burst only) updates the burst function `g` (Eq. 8): `g ← β·g` for
//!    neurons that fired, `g ← 1` otherwise.

use crate::synapse::Synapse;
use crate::SnnError;

/// What happens to the membrane potential when a neuron fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Reset by subtraction (Eq. 4): `V ← V − V_th`. Conserves charge —
    /// the standard for accurate DNN→SNN conversion (Rueckauer et al.).
    #[default]
    Subtraction,
    /// Reset to zero (Eq. 3): `V ← V_rest = 0`. Discards the residual
    /// above threshold, losing information; kept for the ablation
    /// comparing the two reset rules.
    Zero,
}

/// Threshold policy of a spiking layer — the essence of the three hidden
/// codings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Constant threshold (rate coding).
    Fixed {
        /// Threshold value.
        vth: f32,
    },
    /// Oscillating threshold `V_th(t) = 2^-(1+t mod k) · vth` (phase
    /// coding, Eqs. 6–7).
    Phase {
        /// Base threshold constant.
        vth: f32,
        /// Oscillation period `k`.
        period: u32,
    },
    /// Burst-adaptive threshold `V_th(t) = g(t)·vth` (Eqs. 8–9).
    Burst {
        /// Threshold constant — the transmission *precision* knob.
        vth: f32,
        /// Burst constant β (> 1; see crate docs).
        beta: f32,
    },
}

impl ThresholdPolicy {
    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for non-positive `vth`, zero
    /// phase period, or β ≤ 0.
    pub fn validate(&self) -> Result<(), SnnError> {
        match *self {
            ThresholdPolicy::Fixed { vth } if vth <= 0.0 => Err(SnnError::InvalidConfig(format!(
                "fixed threshold {vth} must be positive"
            ))),
            ThresholdPolicy::Phase { vth, period } if vth <= 0.0 || period == 0 => Err(
                SnnError::InvalidConfig(format!("phase policy vth={vth} period={period} invalid")),
            ),
            ThresholdPolicy::Burst { vth, beta } if vth <= 0.0 || beta <= 0.0 => Err(
                SnnError::InvalidConfig(format!("burst policy vth={vth} beta={beta} invalid")),
            ),
            _ => Ok(()),
        }
    }
}

/// One spiking stage: a synapse, optional bias current, IF neurons, and a
/// threshold policy.
#[derive(Debug, Clone)]
pub struct SpikingLayer {
    synapse: Synapse,
    bias: Option<Vec<f32>>,
    policy: ThresholdPolicy,
    vmem: Vec<f32>,
    /// Burst function state `g` (Eq. 8); all 1.0 unless the policy is
    /// `Burst`.
    g: Vec<f32>,
    out: Vec<f32>,
    psp: Vec<f32>,
    /// Cached PSP rows keyed by input-generation token: when the caller
    /// presents a token it has seen before, the matching PSP is reused
    /// without recomputation. Real input coding drives the first stage
    /// with a constant analog vector (one generation per run); periodic
    /// encoders (phase, TTFS) cycle through at most `period`
    /// generations, so each distinct token's synapse pass runs once and
    /// every later period replays from here. Bounded at
    /// [`MAX_PSP_SLOTS`]; a `None` token clears all slots.
    psp_slots: Vec<(u64, Vec<f32>)>,
    reset: ResetMode,
}

/// Upper bound on cached PSP generations per layer — covers every
/// practical phase period / TTFS window while keeping the worst-case
/// memory at 32 PSP rows. Matches the lockstep engine's slot cap.
const MAX_PSP_SLOTS: usize = 32;

impl SpikingLayer {
    /// Builds a spiking layer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for invalid policies or a bias
    /// length that disagrees with the synapse output size.
    pub fn new(
        synapse: Synapse,
        bias: Option<Vec<f32>>,
        policy: ThresholdPolicy,
    ) -> Result<Self, SnnError> {
        policy.validate()?;
        let n = synapse.output_len();
        if let Some(b) = &bias {
            if b.len() != n {
                return Err(SnnError::InvalidConfig(format!(
                    "bias length {} does not match layer size {n}",
                    b.len()
                )));
            }
        }
        Ok(SpikingLayer {
            synapse,
            bias,
            policy,
            vmem: vec![0.0; n],
            g: vec![1.0; n],
            out: vec![0.0; n],
            psp: vec![0.0; n],
            psp_slots: Vec::new(),
            reset: ResetMode::Subtraction,
        })
    }

    /// Number of neurons in this layer.
    pub fn len(&self) -> usize {
        self.vmem.len()
    }

    /// Whether the layer has no neurons (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.vmem.is_empty()
    }

    /// Number of presynaptic inputs.
    pub fn input_len(&self) -> usize {
        self.synapse.input_len()
    }

    /// The layer's threshold policy.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// The layer's synaptic connection pattern.
    pub fn synapse(&self) -> &Synapse {
        &self.synapse
    }

    /// The layer's constant bias currents, if any.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// Borrow of the membrane potentials.
    pub fn potentials(&self) -> &[f32] {
        &self.vmem
    }

    /// Borrow of the burst-function state `g`.
    pub fn burst_state(&self) -> &[f32] {
        &self.g
    }

    /// The layer's reset rule.
    pub fn reset_mode(&self) -> ResetMode {
        self.reset
    }

    /// Sets the reset rule (default: [`ResetMode::Subtraction`]).
    pub fn set_reset_mode(&mut self, reset: ResetMode) {
        self.reset = reset;
    }

    /// Resets all dynamic state (membrane, burst function, caches).
    pub fn reset(&mut self) {
        self.vmem.iter_mut().for_each(|v| *v = 0.0);
        self.g.iter_mut().for_each(|g| *g = 1.0);
        self.psp_slots.clear();
    }

    /// The threshold of neuron `j` at time `t` under the current state.
    pub fn threshold(&self, j: usize, t: u64) -> f32 {
        match self.policy {
            ThresholdPolicy::Fixed { vth } => vth,
            ThresholdPolicy::Phase { vth, period } => {
                let phase = (t % period as u64) as i32;
                vth * 0.5f32.powi(1 + phase)
            }
            ThresholdPolicy::Burst { vth, .. } => vth * self.g[j],
        }
    }

    /// Advances the layer one time step.
    ///
    /// `input` holds the presynaptic spike magnitudes (or analog drive for
    /// real input coding). Returns the output spike-magnitude buffer
    /// (entries are the emitting neuron's threshold, or `0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InputSizeMismatch`] when `input` has the wrong
    /// length.
    pub fn step(&mut self, input: &[f32], t: u64) -> Result<&[f32], SnnError> {
        self.step_with_token(input, t, None)
    }

    /// Advances the layer one time step, passing an *input-generation
    /// token*.
    ///
    /// The token identifies the content of `input`: callers that know
    /// their drive signal repeats a previously seen generation (real
    /// input coding's constant analog vector, or a periodic encoder
    /// re-emitting phase `t mod k`) pass that generation's `Some(token)`
    /// again, and the layer reuses the PSP it computed for it without an
    /// O(n) buffer compare. `None` always recomputes and drops every
    /// cached generation — the token alone governs caching. Passing a
    /// previously used token with *different* input contents is a caller
    /// contract violation and yields stale PSPs.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InputSizeMismatch`] when `input` has the wrong
    /// length.
    pub fn step_with_token(
        &mut self,
        input: &[f32],
        t: u64,
        token: Option<u64>,
    ) -> Result<&[f32], SnnError> {
        // 1. PSP accumulation (replayed when a cached generation
        //    matches the token).
        let hit = token.and_then(|tok| self.psp_slots.iter().position(|(k, _)| *k == tok));
        match hit {
            Some(idx) => {
                for (v, p) in self.vmem.iter_mut().zip(&self.psp_slots[idx].1) {
                    *v += p;
                }
            }
            None => {
                self.psp.iter_mut().for_each(|p| *p = 0.0);
                self.synapse.accumulate(input, &mut self.psp)?;
                match token {
                    Some(tok) => {
                        if self.psp_slots.len() == MAX_PSP_SLOTS {
                            // Degenerate caller (more generations than
                            // slots): start over rather than thrash.
                            self.psp_slots.clear();
                        }
                        self.psp_slots.push((tok, self.psp.clone()));
                    }
                    None => self.psp_slots.clear(),
                }
                for (v, p) in self.vmem.iter_mut().zip(&self.psp) {
                    *v += p;
                }
            }
        }
        if let Some(b) = &self.bias {
            for (v, bb) in self.vmem.iter_mut().zip(b) {
                *v += bb;
            }
        }

        // 2–3. Fire and reset by subtraction.
        match self.policy {
            ThresholdPolicy::Fixed { vth } => {
                for j in 0..self.vmem.len() {
                    if self.vmem[j] >= vth {
                        self.out[j] = vth;
                        self.vmem[j] = match self.reset {
                            ResetMode::Subtraction => self.vmem[j] - vth,
                            ResetMode::Zero => 0.0,
                        };
                    } else {
                        self.out[j] = 0.0;
                    }
                }
            }
            ThresholdPolicy::Phase { vth, period } => {
                let phase = (t % period as u64) as i32;
                let th = vth * 0.5f32.powi(1 + phase);
                for j in 0..self.vmem.len() {
                    if self.vmem[j] >= th {
                        self.out[j] = th;
                        self.vmem[j] = match self.reset {
                            ResetMode::Subtraction => self.vmem[j] - th,
                            ResetMode::Zero => 0.0,
                        };
                    } else {
                        self.out[j] = 0.0;
                    }
                }
            }
            ThresholdPolicy::Burst { vth, beta } => {
                for j in 0..self.vmem.len() {
                    let th = vth * self.g[j];
                    if self.vmem[j] >= th {
                        self.out[j] = th;
                        self.vmem[j] = match self.reset {
                            ResetMode::Subtraction => self.vmem[j] - th,
                            ResetMode::Zero => 0.0,
                        };
                        // 4. Eq. 8: g(t+1) = β·g(t) after a spike.
                        self.g[j] *= beta;
                    } else {
                        self.out[j] = 0.0;
                        self.g[j] = 1.0;
                    }
                }
            }
        }
        Ok(&self.out)
    }

    /// Read-only view of the last step's output magnitudes.
    pub fn last_output(&self) -> &[f32] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsnn_tensor::Tensor;

    fn identity_layer(n: usize, policy: ThresholdPolicy) -> SpikingLayer {
        // Identity dense synapse: out_j = in_j.
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 1.0;
        }
        SpikingLayer::new(
            Synapse::Dense {
                weight: Tensor::from_vec(w, &[n, n]).unwrap(),
            },
            None,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn fixed_policy_rate_tracks_input() {
        // Constant drive 0.3 with threshold 1.0 → fires every ~3.33 steps.
        let mut l = identity_layer(1, ThresholdPolicy::Fixed { vth: 1.0 });
        let mut spikes = 0;
        let mut emitted = 0.0f32;
        let steps = 100;
        for t in 0..steps {
            let out = l.step(&[0.3], t).unwrap();
            if out[0] > 0.0 {
                spikes += 1;
                emitted += out[0];
            }
        }
        assert_eq!(spikes, 30);
        assert!((emitted - 30.0).abs() < 1e-4);
        // conservation: emitted + residual == received
        assert!((emitted + l.potentials()[0] - 0.3 * steps as f32).abs() < 1e-3);
    }

    #[test]
    fn reset_by_subtraction_conserves_charge() {
        let mut l = identity_layer(1, ThresholdPolicy::Fixed { vth: 0.5 });
        let mut emitted = 0.0f32;
        let drive = [0.9f32];
        for t in 0..50 {
            let out = l.step(&drive, t).unwrap();
            emitted += out[0];
        }
        let received = 0.9 * 50.0;
        assert!(
            (emitted + l.potentials()[0] - received).abs() < 1e-3,
            "emitted {emitted} residual {}",
            l.potentials()[0]
        );
    }

    #[test]
    fn phase_policy_thresholds_oscillate() {
        let l = identity_layer(
            1,
            ThresholdPolicy::Phase {
                vth: 1.0,
                period: 4,
            },
        );
        assert_eq!(l.threshold(0, 0), 0.5);
        assert_eq!(l.threshold(0, 1), 0.25);
        assert_eq!(l.threshold(0, 3), 0.0625);
        assert_eq!(l.threshold(0, 4), 0.5); // periodic
    }

    #[test]
    fn phase_spikes_carry_phase_weights() {
        let mut l = identity_layer(
            1,
            ThresholdPolicy::Phase {
                vth: 1.0,
                period: 4,
            },
        );
        // Large initial drive: fires at every phase, magnitudes 1/2, 1/4…
        let out0 = l.step(&[2.0], 0).unwrap().to_vec();
        assert_eq!(out0[0], 0.5);
        let out1 = l.step(&[0.0], 1).unwrap().to_vec();
        assert_eq!(out1[0], 0.25);
    }

    #[test]
    fn burst_generates_consecutive_growing_spikes() {
        let mut l = identity_layer(
            1,
            ThresholdPolicy::Burst {
                vth: 0.125,
                beta: 2.0,
            },
        );
        // One big packet: 1.0 of charge, then silence.
        let mut magnitudes = Vec::new();
        let mut drive = vec![1.0f32];
        for t in 0..10 {
            let out = l.step(&drive, t).unwrap();
            if out[0] > 0.0 {
                magnitudes.push(out[0]);
            }
            drive[0] = 0.0;
        }
        // Burst: 0.125, 0.25, 0.5 transmits 0.875; residual 0.125 then
        // fires once more after g resets.
        assert!(magnitudes.len() >= 3);
        assert_eq!(magnitudes[0], 0.125);
        assert_eq!(magnitudes[1], 0.25);
        assert_eq!(magnitudes[2], 0.5);
        let total: f32 = magnitudes.iter().sum();
        assert!((total + l.potentials()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn burst_state_resets_after_silent_step() {
        let mut l = identity_layer(
            1,
            ThresholdPolicy::Burst {
                vth: 0.5,
                beta: 2.0,
            },
        );
        let _ = l.step(&[0.6], 0).unwrap(); // fires, g -> 2
        assert_eq!(l.burst_state()[0], 2.0);
        let _ = l.step(&[0.0], 1).unwrap(); // silent, g -> 1
        assert_eq!(l.burst_state()[0], 1.0);
    }

    #[test]
    fn burst_with_beta_one_equals_rate() {
        let drive = [0.37f32];
        let mut rate = identity_layer(1, ThresholdPolicy::Fixed { vth: 0.5 });
        let mut burst = identity_layer(
            1,
            ThresholdPolicy::Burst {
                vth: 0.5,
                beta: 1.0,
            },
        );
        for t in 0..200 {
            let a = rate.step(&drive, t).unwrap().to_vec();
            let b = burst.step(&drive, t).unwrap().to_vec();
            assert_eq!(a, b, "diverged at t={t}");
        }
    }

    #[test]
    fn burst_drains_large_backlog_logarithmically() {
        // A backlog of 100 thresholds should drain in O(log) consecutive
        // steps with β=2, versus 100 steps for rate coding.
        let mut l = identity_layer(
            1,
            ThresholdPolicy::Burst {
                vth: 1.0,
                beta: 2.0,
            },
        );
        let mut drive = vec![100.0f32];
        let mut steps_to_drain = 0;
        for t in 0..64 {
            let _ = l.step(&drive, t).unwrap();
            drive[0] = 0.0;
            steps_to_drain = t + 1;
            if l.potentials()[0] < 1.0 {
                break;
            }
        }
        // Bursts of doubling payloads interleaved with single reset steps:
        // a 100-threshold backlog drains in ~18 steps versus 100 for rate.
        assert!(
            steps_to_drain <= 20,
            "burst took {steps_to_drain} steps to drain backlog"
        );
    }

    #[test]
    fn reset_to_zero_discards_residual() {
        // Drive 1.7 with vth 1.0: subtraction keeps the 0.7 residual;
        // reset-to-zero throws it away (the Eq. 3 information loss).
        let drive = [1.7f32];
        let mut sub = identity_layer(1, ThresholdPolicy::Fixed { vth: 1.0 });
        let mut zero = identity_layer(1, ThresholdPolicy::Fixed { vth: 1.0 });
        zero.set_reset_mode(ResetMode::Zero);
        assert_eq!(zero.reset_mode(), ResetMode::Zero);
        let _ = sub.step(&drive, 0).unwrap();
        let _ = zero.step(&drive, 0).unwrap();
        assert!((sub.potentials()[0] - 0.7).abs() < 1e-6);
        assert_eq!(zero.potentials()[0], 0.0);
    }

    #[test]
    fn reset_to_zero_undercounts_rate() {
        // With reset-to-zero, emitted charge over time falls below the
        // injected charge — the source of conversion error in Eq. 3.
        let mut zero = identity_layer(1, ThresholdPolicy::Fixed { vth: 1.0 });
        zero.set_reset_mode(ResetMode::Zero);
        let mut emitted = 0.0f32;
        for t in 0..100 {
            emitted += zero.step(&[1.3], t).unwrap()[0];
        }
        assert!(emitted < 1.3 * 100.0 * 0.9, "emitted {emitted}");
    }

    #[test]
    fn reset_clears_state() {
        let mut l = identity_layer(
            2,
            ThresholdPolicy::Burst {
                vth: 0.5,
                beta: 2.0,
            },
        );
        let _ = l.step(&[1.0, 1.0], 0).unwrap();
        l.reset();
        assert!(l.potentials().iter().all(|&v| v == 0.0));
        assert!(l.burst_state().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn bias_injected_every_step() {
        let mut l = SpikingLayer::new(
            Synapse::Dense {
                weight: Tensor::zeros(&[1, 1]),
            },
            Some(vec![0.25]),
            ThresholdPolicy::Fixed { vth: 1.0 },
        )
        .unwrap();
        let mut spikes = 0;
        for t in 0..100 {
            let out = l.step(&[0.0], t).unwrap();
            if out[0] > 0.0 {
                spikes += 1;
            }
        }
        assert_eq!(spikes, 25);
    }

    #[test]
    fn psp_cache_reuses_for_same_token() {
        let mut l = identity_layer(2, ThresholdPolicy::Fixed { vth: 10.0 });
        let _ = l.step_with_token(&[0.5, 0.5], 0, Some(7)).unwrap();
        let v1 = l.potentials().to_vec();
        // Same token ⇒ the cached PSP is reused; the (deliberately
        // different) input buffer is not even read.
        let _ = l.step_with_token(&[9.0, 9.0], 1, Some(7)).unwrap();
        let v2 = l.potentials().to_vec();
        assert_eq!(v2, vec![v1[0] * 2.0, v1[1] * 2.0]);
        // A new token must invalidate the cache.
        let _ = l.step_with_token(&[1.0, 0.0], 2, Some(8)).unwrap();
        assert_eq!(l.potentials()[0], v2[0] + 1.0);
        assert_eq!(l.potentials()[1], v2[1]);
        // Token `None` always recomputes.
        let _ = l.step_with_token(&[0.0, 1.0], 3, None).unwrap();
        assert_eq!(l.potentials()[1], v2[1] + 1.0);
        // ...and clears the cache: re-presenting an old token after a
        // `None` step recomputes rather than resurrecting stale PSPs.
        let _ = l.step_with_token(&[1.0, 0.0], 4, Some(8)).unwrap();
        assert_eq!(l.potentials()[0], v2[0] + 2.0);
    }

    #[test]
    fn psp_cache_replays_periodic_generations() {
        // Three generations cycling as a periodic encoder would drive
        // them: the second period must replay each generation from its
        // slot even though newer generations were cached in between
        // (the single-slot cache this replaced could not).
        let mut l = identity_layer(2, ThresholdPolicy::Fixed { vth: 1e9 });
        let gens = [[0.25f32, 0.0], [0.0, 0.5], [0.125, 0.125]];
        for t in 0..6u64 {
            let tok = t % 3;
            let _ = l
                .step_with_token(&gens[tok as usize], t, Some(tok))
                .unwrap();
        }
        // Every generation integrated exactly twice (all sums exact in
        // f32).
        assert_eq!(l.potentials(), &[0.75, 1.25]);
        // The replay is a true cache hit: a different buffer under a
        // seen token is not read (the documented caller contract).
        let _ = l.step_with_token(&[9.0, 9.0], 6, Some(0)).unwrap();
        assert_eq!(l.potentials(), &[1.0, 1.25]);
    }

    #[test]
    fn psp_cache_cleared_by_reset() {
        let mut l = identity_layer(1, ThresholdPolicy::Fixed { vth: 10.0 });
        let _ = l.step_with_token(&[0.5], 0, Some(1)).unwrap();
        l.reset();
        // After reset the same token must recompute (fresh image).
        let _ = l.step_with_token(&[1.0], 0, Some(1)).unwrap();
        assert_eq!(l.potentials()[0], 1.0);
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(ThresholdPolicy::Fixed { vth: 0.0 }.validate().is_err());
        assert!(ThresholdPolicy::Phase {
            vth: 1.0,
            period: 0
        }
        .validate()
        .is_err());
        assert!(ThresholdPolicy::Burst {
            vth: 1.0,
            beta: 0.0
        }
        .validate()
        .is_err());
        let syn = Synapse::Dense {
            weight: Tensor::zeros(&[1, 2]),
        };
        assert!(
            SpikingLayer::new(syn, Some(vec![0.0]), ThresholdPolicy::Fixed { vth: 1.0 }).is_err()
        );
    }

    #[test]
    fn wrong_input_length_errors() {
        let mut l = identity_layer(2, ThresholdPolicy::Fixed { vth: 1.0 });
        assert!(matches!(
            l.step(&[1.0], 0),
            Err(SnnError::InputSizeMismatch { .. })
        ));
    }
}
