//! Fixed-point int8 inference: symmetric per-output weight quantization
//! with `i32` PSP accumulation.
//!
//! A [`QuantizedDense`] stage stores each weight column `j` as `i8`
//! codes `q[i][j] = round(w[i][j] / scale[j])` with one symmetric scale
//! `scale[j] = max_i |w[i][j]| / 127` per output neuron. The kernel
//! never touches the `f32` weights: burst/phase event magnitudes
//! `g · 2^k` fold into the accumulator as pure shifts
//! (`acc += q << k`), and dequantization happens **once per output
//! row** (`psp[j] = scale[j] · (g · acc[j] + side[j])`), not per MAC.
//! An int8 SIMD lane processes 4× the operands of an `f32` lane on the
//! same registers, and the event-driven accumulation does work
//! proportional to spike density instead of the dense kernel's
//! `1 − (1 − density)^batch` live-neuron fraction.
//!
//! Magnitudes that do not sit on the power-of-two exponent plane (or
//! whose shift would overflow the [`max_shift`](QuantizedDense::max_shift)
//! bound) take a raw `f32` side channel, so the kernel is exact in the
//! *event magnitudes* — the only approximation is the int8 weight
//! rounding, bounded by `scale[j] / 2` per weight. Whether that
//! rounding is acceptable end-to-end is decided by the autotuner's
//! accuracy-delta gate (see [`crate::autotune::AutotuneConfig`]), never
//! assumed.

use crate::synapse::{lane_mask, pow2_exponent};
use crate::SnnError;
use bsnn_tensor::Tensor;

/// Decoded event shift sentinel: the magnitude must go through the raw
/// `f32` side channel instead of the `i32` shift path.
const SHIFT_SIDE: i32 = i32::MIN;

/// A dense synapse quantized to symmetric int8 weights with per-output
/// scales, executable through the `i32` PSP accumulator kernels.
///
/// Codes are `(in, out)` row-major like the `f32` weight matrix, so the
/// replay of one input neuron streams a contiguous `i8` row. Columns
/// that are entirely zero get a zero scale (their codes are zero and
/// their dequantized PSP is exactly `0.0`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    in_len: usize,
    out_len: usize,
    /// Int8 weight codes, `(in, out)` row-major.
    q: Vec<i8>,
    /// Per-output dequantization scales (`max_i |w[i][j]| / 127`).
    scales: Vec<f32>,
    /// Largest event exponent the `i32` accumulator absorbs as a shift:
    /// `127 · in_len · 2^max_shift <= i32::MAX`, so no sequence of
    /// one-event-per-input steps can overflow. Larger exponents take
    /// the `f32` side channel.
    max_shift: u32,
}

/// The overflow-safe shift bound for a given input width.
fn shift_bound(in_len: usize) -> u32 {
    let worst = 127i64 * in_len.max(1) as i64;
    let mut ms = 0u32;
    while ms < 30 && (worst << (ms + 1)) <= i32::MAX as i64 {
        ms += 1;
    }
    ms
}

impl QuantizedDense {
    /// Quantizes a dense `(in, out)` weight tensor. Returns `None` when
    /// the tensor is not a 2-D matrix, is degenerate (zero rows or
    /// columns), carries non-finite weights, or is too wide for the
    /// overflow bound (`127 · in_len > i32::MAX`).
    pub fn from_weights(weight: &Tensor) -> Option<Self> {
        let shape = weight.shape();
        if shape.len() != 2 {
            return None;
        }
        let (in_len, out_len) = (shape[0], shape[1]);
        if in_len == 0 || out_len == 0 || 127i64 * in_len as i64 > i32::MAX as i64 {
            return None;
        }
        let w = weight.as_slice();
        let mut maxabs = vec![0.0f32; out_len];
        for row in w.chunks_exact(out_len) {
            for (m, &v) in maxabs.iter_mut().zip(row) {
                if !v.is_finite() {
                    return None;
                }
                *m = m.max(v.abs());
            }
        }
        let scales: Vec<f32> = maxabs.iter().map(|&m| m / 127.0).collect();
        let mut q = vec![0i8; in_len * out_len];
        for (qrow, row) in q.chunks_exact_mut(out_len).zip(w.chunks_exact(out_len)) {
            for ((qv, &v), &s) in qrow.iter_mut().zip(row).zip(&scales) {
                *qv = if s > 0.0 {
                    (v / s).round().clamp(-127.0, 127.0) as i8
                } else {
                    0
                };
            }
        }
        Some(QuantizedDense {
            max_shift: shift_bound(in_len),
            in_len,
            out_len,
            q,
            scales,
        })
    }

    /// Rebuilds a quantized stage from stored parts (the snapshot-v6
    /// load path). The shift bound is derived, never trusted from disk.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on inconsistent lengths,
    /// degenerate shapes, or scales that are negative or non-finite.
    pub fn from_parts(
        in_len: usize,
        out_len: usize,
        q: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<Self, SnnError> {
        if in_len == 0 || out_len == 0 || 127i64 * in_len as i64 > i32::MAX as i64 {
            return Err(SnnError::InvalidConfig(format!(
                "quantized stage shape {in_len}x{out_len} out of range"
            )));
        }
        if q.len() != in_len * out_len {
            return Err(SnnError::InvalidConfig(format!(
                "quantized code count {} != {in_len}x{out_len}",
                q.len()
            )));
        }
        if scales.len() != out_len {
            return Err(SnnError::InvalidConfig(format!(
                "quantized scale count {} != {out_len} outputs",
                scales.len()
            )));
        }
        if scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(SnnError::InvalidConfig(
                "quantized scales must be finite and non-negative".into(),
            ));
        }
        Ok(QuantizedDense {
            max_shift: shift_bound(in_len),
            in_len,
            out_len,
            q,
            scales,
        })
    }

    /// Presynaptic width.
    pub fn input_len(&self) -> usize {
        self.in_len
    }

    /// Postsynaptic width.
    pub fn output_len(&self) -> usize {
        self.out_len
    }

    /// The int8 weight codes, `(in, out)` row-major.
    pub fn codes(&self) -> &[i8] {
        &self.q
    }

    /// Per-output dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Largest event exponent absorbed as an accumulator shift.
    pub fn max_shift(&self) -> u32 {
        self.max_shift
    }

    /// Worst-case absolute weight rounding error of output `j`
    /// (`scale[j] / 2` — the symmetric-rounding half step).
    pub fn weight_error_bound(&self, j: usize) -> f32 {
        self.scales.get(j).copied().unwrap_or(0.0) * 0.5
    }

    /// Self-packing int8 accumulation: builds the per-neuron `u64`
    /// activity masks from the staged SoA `input`
    /// (`[neuron][batch]`), then replays through
    /// [`Self::accumulate_packed_planes`]. `psp_lanes` is lane-major
    /// (`[lane][neuron]`) and **accumulated into** (callers zero it
    /// first, as for the sparse/packed `f32` kernels).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero batch or one
    /// wider than the 64-bit mask plane, and
    /// [`SnnError::InputSizeMismatch`] on length mismatches.
    pub fn accumulate_packed(
        &self,
        input: &[f32],
        psp_lanes: &mut [f32],
        batch: usize,
        base: Option<f32>,
        scratch: &mut QuantScratch,
    ) -> Result<(), SnnError> {
        if batch == 0 || batch > 64 {
            return Err(SnnError::InvalidConfig(format!(
                "quantized kernel lockstep width {batch} outside 1..=64"
            )));
        }
        if input.len() != self.in_len * batch {
            return Err(SnnError::InputSizeMismatch {
                expected: self.in_len * batch,
                actual: input.len(),
            });
        }
        let mut masks = std::mem::take(&mut scratch.masks);
        masks.clear();
        masks.extend(input.chunks_exact(batch).map(lane_mask));
        let r = self.accumulate_packed_planes(input, psp_lanes, batch, &masks, None, base, scratch);
        scratch.masks = masks;
        r
    }

    /// Plane-fed int8 accumulation: replays externally built activity
    /// masks (PR 8's fire-pass bit-planes) against the int8 codes.
    ///
    /// Event magnitudes resolve exactly as in the `f32` packed replay:
    /// `uniform` is the step's single magnitude under fixed/phase
    /// policies; otherwise each event's magnitude is read off the
    /// staged input. A magnitude `base · 2^k` with
    /// `0 <= k <= max_shift` folds into the `i32` accumulator as
    /// `q << k`; anything else (negative exponents under a non-uniform
    /// drive, off-plane magnitudes, missing `base`, oversized shifts)
    /// takes the raw `f32` side channel — so quantization error comes
    /// from weight rounding alone, never from magnitude handling.
    /// Dequantization runs once per (lane, output):
    /// `psp[j] += scale[j] · (base · acc[j] + side[j])`.
    ///
    /// `psp_lanes` is lane-major and accumulated into.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero batch or one
    /// wider than 64, and [`SnnError::InputSizeMismatch`] on
    /// input/mask/PSP length mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_packed_planes(
        &self,
        input: &[f32],
        psp_lanes: &mut [f32],
        batch: usize,
        masks: &[u64],
        uniform: Option<f32>,
        base: Option<f32>,
        scratch: &mut QuantScratch,
    ) -> Result<(), SnnError> {
        if batch == 0 || batch > 64 {
            return Err(SnnError::InvalidConfig(format!(
                "quantized kernel lockstep width {batch} outside 1..=64"
            )));
        }
        if input.len() != self.in_len * batch {
            return Err(SnnError::InputSizeMismatch {
                expected: self.in_len * batch,
                actual: input.len(),
            });
        }
        if masks.len() != self.in_len {
            return Err(SnnError::InputSizeMismatch {
                expected: self.in_len,
                actual: masks.len(),
            });
        }
        let out = self.out_len;
        if psp_lanes.len() != out * batch {
            return Err(SnnError::InputSizeMismatch {
                expected: out * batch,
                actual: psp_lanes.len(),
            });
        }
        scratch.begin(out * batch);
        if let Some(u) = uniform {
            // Uniform-magnitude fast path (fixed/phase-fed stages): the
            // magnitude factors out of the whole accumulation, so every
            // event is a shift-0 add and the negative phase exponents
            // never need a side channel.
            for (i, &m) in masks.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                let qrow = &self.q[i * out..(i + 1) * out];
                let mut mm = m;
                while mm != 0 {
                    let b = mm.trailing_zeros() as usize;
                    mm &= mm - 1;
                    let acc = &mut scratch.acc[b * out..(b + 1) * out];
                    for (a, &qv) in acc.iter_mut().zip(qrow) {
                        *a += qv as i32;
                    }
                }
            }
            for (b, acc_row) in scratch.acc.chunks_exact(out).take(batch).enumerate() {
                let lane_psp = &mut psp_lanes[b * out..(b + 1) * out];
                for ((p, &a), &sc) in lane_psp.iter_mut().zip(acc_row).zip(&self.scales) {
                    *p += (u * sc) * a as f32;
                }
            }
            return Ok(());
        }
        // Per-event magnitudes (burst-fed stages and stage 0). Spike
        // traffic repeats a handful of distinct magnitudes, so a
        // one-entry memo on the magnitude's bits answers almost every
        // exponent probe (same trick as the f32 packed pack pass).
        let mut any_side = false;
        let mut memo_bits = 0u32; // unreachable: set bits exclude ±0
        let mut memo_shift = SHIFT_SIDE;
        for (i, &m) in masks.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let qrow = &self.q[i * out..(i + 1) * out];
            let mut mm = m;
            while mm != 0 {
                let b = mm.trailing_zeros() as usize;
                mm &= mm - 1;
                let s = input[i * batch + b];
                let bits = s.to_bits();
                let sh = if bits == memo_bits {
                    memo_shift
                } else {
                    let sh = match base.and_then(|g| pow2_exponent(s, g)) {
                        Some(e) => {
                            let d = e as i32 - 127;
                            if (0..=self.max_shift as i32).contains(&d) {
                                d
                            } else {
                                SHIFT_SIDE
                            }
                        }
                        None => SHIFT_SIDE,
                    };
                    memo_bits = bits;
                    memo_shift = sh;
                    sh
                };
                if sh == SHIFT_SIDE {
                    any_side = true;
                    let side = &mut scratch.side[b * out..(b + 1) * out];
                    for (p, &qv) in side.iter_mut().zip(qrow) {
                        *p += s * qv as f32;
                    }
                } else {
                    let acc = &mut scratch.acc[b * out..(b + 1) * out];
                    for (a, &qv) in acc.iter_mut().zip(qrow) {
                        *a += (qv as i32) << sh;
                    }
                }
            }
        }
        // One dequantization per (lane, output) row.
        let g = base.unwrap_or(0.0); // read only when the shift path ran
        for b in 0..batch {
            let acc_row = &scratch.acc[b * out..(b + 1) * out];
            let lane_psp = &mut psp_lanes[b * out..(b + 1) * out];
            if any_side {
                let side_row = &scratch.side[b * out..(b + 1) * out];
                for (((p, &a), &sv), &sc) in lane_psp
                    .iter_mut()
                    .zip(acc_row)
                    .zip(side_row)
                    .zip(&self.scales)
                {
                    *p += sc * (g * a as f32 + sv);
                }
            } else {
                for ((p, &a), &sc) in lane_psp.iter_mut().zip(acc_row).zip(&self.scales) {
                    *p += sc * (g * a as f32);
                }
            }
        }
        scratch.side_dirty = any_side;
        Ok(())
    }
}

/// Reusable buffers of the int8 kernels: the lane-major `i32`
/// accumulator, the raw `f32` side channel, and the self-pack mask
/// plane. Hold one per engine — capacity is retained across calls.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// Lane-major `[lane][out]` i32 PSP accumulator.
    acc: Vec<i32>,
    /// Lane-major `[lane][out]` raw-magnitude side channel.
    side: Vec<f32>,
    /// Whether `side` holds residue from the previous call.
    side_dirty: bool,
    /// Self-pack mask plane (one `u64` per input neuron).
    masks: Vec<u64>,
}

impl QuantScratch {
    /// Sizes and zeroes the accumulators for one kernel call. The side
    /// channel is only re-zeroed when the previous call dirtied it.
    fn begin(&mut self, len: usize) {
        if self.acc.len() != len {
            self.acc.clear();
            self.acc.resize(len, 0);
        } else {
            self.acc.fill(0);
        }
        if self.side.len() != len {
            self.side.clear();
            self.side.resize(len, 0.0);
            self.side_dirty = false;
        } else if self.side_dirty {
            self.side.fill(0.0);
            self.side_dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsnn_tensor::init::uniform;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn to_soa(images: &[Vec<f32>]) -> Vec<f32> {
        let batch = images.len();
        let n = images[0].len();
        let mut soa = vec![0.0f32; n * batch];
        for (b, img) in images.iter().enumerate() {
            for (i, &v) in img.iter().enumerate() {
                soa[i * batch + b] = v;
            }
        }
        soa
    }

    /// f32 reference: per-lane dense matvec against the *original*
    /// weights, plus the quantization error bound it must sit within.
    fn check_against_f32(
        weight: &Tensor,
        qd: &QuantizedDense,
        inputs: &[Vec<f32>],
        base: Option<f32>,
        uniform: Option<f32>,
    ) {
        let (inn, out) = (weight.shape()[0], weight.shape()[1]);
        let w = weight.as_slice();
        let batch = inputs.len();
        let soa = to_soa(inputs);
        let masks: Vec<u64> = soa.chunks_exact(batch).map(lane_mask).collect();
        let mut psp = vec![0.0f32; out * batch];
        let mut scratch = QuantScratch::default();
        qd.accumulate_packed_planes(&soa, &mut psp, batch, &masks, uniform, base, &mut scratch)
            .unwrap();
        for (b, img) in inputs.iter().enumerate() {
            let sum_abs: f32 = img.iter().map(|s| s.abs()).sum();
            for j in 0..out {
                let reference: f32 = (0..inn).map(|i| img[i] * w[i * out + j]).sum();
                let got = psp[b * out + j];
                let bound = qd.weight_error_bound(j) * sum_abs + 1e-4;
                assert!(
                    (got - reference).abs() <= bound,
                    "lane {b} out {j}: {got} vs {reference} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn quantized_psp_tracks_f32_within_rounding_bound() {
        let mut rng = StdRng::seed_from_u64(71);
        let weight = uniform(&mut rng, &[24, 9], -1.0, 1.0);
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        assert_eq!(qd.input_len(), 24);
        assert_eq!(qd.output_len(), 9);
        for density in [0.1f32, 0.5, 1.0] {
            for batch in [1usize, 3, 16] {
                // Burst-shaped magnitudes base · 2^k on the shift path
                // plus some raw analog stragglers on the side channel.
                let inputs: Vec<Vec<f32>> = (0..batch)
                    .map(|_| {
                        (0..24)
                            .map(|_| {
                                if rng.gen_range(0.0..1.0f32) >= density {
                                    0.0
                                } else if rng.gen_bool(0.7) {
                                    0.25 * 2.0f32.powi(rng.gen_range(0..=4))
                                } else {
                                    rng.gen_range(0.01..1.0f32)
                                }
                            })
                            .collect()
                    })
                    .collect();
                check_against_f32(&weight, &qd, &inputs, Some(0.25), None);
                check_against_f32(&weight, &qd, &inputs, None, None);
            }
        }
    }

    #[test]
    fn uniform_fast_path_matches_f32_for_negative_exponents() {
        let mut rng = StdRng::seed_from_u64(73);
        let weight = uniform(&mut rng, &[20, 6], -1.0, 1.0);
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        // Phase-shaped traffic: one magnitude per step, including
        // exponents below the shift path's floor (2^−5 · vth).
        for u in [0.4f32, 0.4 * 0.5, 0.4 * 0.03125] {
            let inputs: Vec<Vec<f32>> = (0..8)
                .map(|l| {
                    (0..20)
                        .map(|i| if (i + l) % 3 == 0 { u } else { 0.0 })
                        .collect()
                })
                .collect();
            check_against_f32(&weight, &qd, &inputs, Some(0.4), Some(u));
        }
    }

    #[test]
    fn exactly_representable_weights_make_the_shift_path_exact() {
        // Integer weights in [−127, 127] quantize with scale 1.0, so
        // dequantization reproduces the f32 product bit-exactly when
        // every magnitude is a small power of two.
        let mut rng = StdRng::seed_from_u64(79);
        let mut w = vec![0.0f32; 12 * 5];
        for v in &mut w {
            *v = rng.gen_range(-127i32..=127) as f32;
        }
        // Pin the column max so every scale is exactly 1.0.
        for v in w.iter_mut().take(5) {
            *v = 127.0;
        }
        let weight = Tensor::from_vec(w.clone(), &[12, 5]).unwrap();
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        assert!(qd.scales().iter().all(|&s| s == 1.0));
        let g = 0.5f32;
        let batch = 4usize;
        let inputs: Vec<Vec<f32>> = (0..batch)
            .map(|_| {
                (0..12)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            g * 2.0f32.powi(rng.gen_range(0..=3))
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let soa = to_soa(&inputs);
        let masks: Vec<u64> = soa.chunks_exact(batch).map(lane_mask).collect();
        let mut psp = vec![0.0f32; 5 * batch];
        let mut scratch = QuantScratch::default();
        qd.accumulate_packed_planes(&soa, &mut psp, batch, &masks, None, Some(g), &mut scratch)
            .unwrap();
        for (b, img) in inputs.iter().enumerate() {
            for j in 0..5 {
                let reference: f32 = (0..12).map(|i| img[i] * w[i * 5 + j]).sum();
                assert_eq!(
                    psp[b * 5 + j].to_bits(),
                    reference.to_bits(),
                    "lane {b} out {j}"
                );
            }
        }
    }

    #[test]
    fn saturation_and_all_negative_columns_quantize_symmetrically() {
        // Column 0 all-negative, column 1 mixed with one dominant
        // weight: the dominant entries must hit exactly ±127.
        let w = vec![
            -2.0f32, 10.0, //
            -1.0, -10.0, //
            -0.5, 0.1,
        ];
        let weight = Tensor::from_vec(w, &[3, 2]).unwrap();
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        assert_eq!(qd.codes()[0], -127, "column max must saturate");
        assert_eq!(qd.codes()[1], 127);
        assert_eq!(qd.codes()[3], -127);
        assert!(qd.scales()[0] > 0.0 && qd.scales()[1] > 0.0);
        let inputs = vec![vec![1.0f32, 1.0, 1.0]];
        check_against_f32(&weight, &qd, &inputs, None, None);
    }

    #[test]
    fn zero_column_dequantizes_to_exact_zero() {
        let w = vec![
            0.0f32, 1.0, //
            0.0, -0.5,
        ];
        let weight = Tensor::from_vec(w, &[2, 2]).unwrap();
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        assert_eq!(qd.scales()[0], 0.0);
        let inputs = vec![vec![0.7f32, 0.3]];
        let soa = to_soa(&inputs);
        let masks = vec![1u64, 1];
        let mut psp = vec![0.0f32; 2];
        let mut scratch = QuantScratch::default();
        qd.accumulate_packed_planes(&soa, &mut psp, 1, &masks, None, None, &mut scratch)
            .unwrap();
        assert_eq!(psp[0].to_bits(), 0.0f32.to_bits());
        assert_ne!(psp[1], 0.0);
    }

    #[test]
    fn oversized_shifts_fall_back_to_the_side_channel() {
        let mut rng = StdRng::seed_from_u64(83);
        let weight = uniform(&mut rng, &[8, 4], -1.0, 1.0);
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        let huge = 2.0f32.powi(qd.max_shift() as i32 + 3);
        // Every event sits above max_shift: the i32 path must not run
        // (it would overflow) and results still track the f32 product.
        let inputs: Vec<Vec<f32>> = (0..2)
            .map(|_| {
                (0..8)
                    .map(|i| if i % 2 == 0 { huge } else { 0.0 })
                    .collect()
            })
            .collect();
        check_against_f32(&weight, &qd, &inputs, Some(1.0), None);
        // Below-base exponents (2^−k under a burst-fed stage) also
        // reroute to the side channel rather than shifting negatively.
        let tiny = 0.25f32;
        let inputs: Vec<Vec<f32>> = (0..2)
            .map(|_| {
                (0..8)
                    .map(|i| if i % 2 == 1 { tiny } else { 0.0 })
                    .collect()
            })
            .collect();
        check_against_f32(&weight, &qd, &inputs, Some(1.0), None);
    }

    #[test]
    fn self_pack_agrees_with_plane_fed() {
        let mut rng = StdRng::seed_from_u64(89);
        let weight = uniform(&mut rng, &[16, 7], -1.0, 1.0);
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        let batch = 5usize;
        let inputs: Vec<Vec<f32>> = (0..batch)
            .map(|_| {
                (0..16)
                    .map(|_| {
                        if rng.gen_bool(0.4) {
                            rng.gen_range(0.01..1.0f32)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let soa = to_soa(&inputs);
        let masks: Vec<u64> = soa.chunks_exact(batch).map(lane_mask).collect();
        let mut scratch = QuantScratch::default();
        let mut a = vec![0.0f32; 7 * batch];
        qd.accumulate_packed(&soa, &mut a, batch, Some(0.5), &mut scratch)
            .unwrap();
        let mut b = vec![0.0f32; 7 * batch];
        qd.accumulate_packed_planes(&soa, &mut b, batch, &masks, None, Some(0.5), &mut scratch)
            .unwrap();
        assert_eq!(a, b, "self-pack diverged from plane-fed replay");
    }

    #[test]
    fn constructors_reject_degenerate_inputs() {
        assert!(QuantizedDense::from_weights(&Tensor::zeros(&[4])).is_none());
        assert!(QuantizedDense::from_weights(&Tensor::zeros(&[0, 3])).is_none());
        let nan = Tensor::from_vec(vec![f32::NAN, 1.0], &[2, 1]).unwrap();
        assert!(QuantizedDense::from_weights(&nan).is_none());
        assert!(QuantizedDense::from_parts(2, 2, vec![0; 3], vec![0.5; 2]).is_err());
        assert!(QuantizedDense::from_parts(2, 2, vec![0; 4], vec![0.5; 3]).is_err());
        assert!(QuantizedDense::from_parts(2, 2, vec![0; 4], vec![-0.5, 0.5]).is_err());
        assert!(QuantizedDense::from_parts(2, 2, vec![0; 4], vec![f32::NAN, 0.5]).is_err());
        assert!(QuantizedDense::from_parts(0, 2, vec![], vec![0.5; 2]).is_err());
        let ok = QuantizedDense::from_parts(2, 2, vec![1, -1, 2, -2], vec![0.5, 0.25]).unwrap();
        assert_eq!(ok.max_shift(), shift_bound(2));
        // Round trip through parts preserves the kernel's behaviour.
        let rebuilt = QuantizedDense::from_parts(
            ok.input_len(),
            ok.output_len(),
            ok.codes().to_vec(),
            ok.scales().to_vec(),
        )
        .unwrap();
        assert_eq!(ok, rebuilt);
    }

    #[test]
    fn kernel_rejects_bad_shapes() {
        let weight = Tensor::from_vec(vec![0.5f32; 6], &[2, 3]).unwrap();
        let qd = QuantizedDense::from_weights(&weight).unwrap();
        let mut scratch = QuantScratch::default();
        let mut psp = vec![0.0f32; 6];
        assert!(qd
            .accumulate_packed(&[0.0; 4], &mut psp, 0, None, &mut scratch)
            .is_err());
        assert!(qd
            .accumulate_packed(&[0.0; 130], &mut psp, 65, None, &mut scratch)
            .is_err());
        assert!(qd
            .accumulate_packed(&[0.0; 3], &mut psp, 2, None, &mut scratch)
            .is_err());
        let mut short = vec![0.0f32; 5];
        assert!(qd
            .accumulate_packed(&[0.0; 4], &mut short, 2, None, &mut scratch)
            .is_err());
        assert!(qd
            .accumulate_packed_planes(&[0.0; 4], &mut psp, 2, &[0; 3], None, None, &mut scratch)
            .is_err());
        assert!(qd
            .accumulate_packed(&[0.0; 4], &mut psp, 2, None, &mut scratch)
            .is_ok());
    }

    #[test]
    fn shift_bound_respects_i32_overflow() {
        for in_len in [1usize, 24, 1024, 1 << 20] {
            let ms = shift_bound(in_len);
            assert!((127i64 * in_len as i64) << ms <= i32::MAX as i64);
            assert!(ms == 30 || (127i64 * in_len as i64) << (ms + 1) > i32::MAX as i64);
        }
    }
}
