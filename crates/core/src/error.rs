//! Error types for SNN conversion and simulation.

use bsnn_dnn::DnnError;
use bsnn_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors from SNN conversion and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Running the source DNN failed during conversion.
    Dnn(DnnError),
    /// A configuration value is out of range (e.g. `v_th <= 0`).
    InvalidConfig(String),
    /// The source DNN contains a layer the converter cannot map to a
    /// spiking equivalent.
    UnsupportedLayer(String),
    /// Input image size does not match the network's input layer.
    InputSizeMismatch {
        /// Neurons in the input layer.
        expected: usize,
        /// Pixels provided.
        actual: usize,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            SnnError::Dnn(e) => write!(f, "source DNN failed: {e}"),
            SnnError::InvalidConfig(msg) => write!(f, "invalid SNN configuration: {msg}"),
            SnnError::UnsupportedLayer(name) => {
                write!(f, "cannot convert layer `{name}` to a spiking equivalent")
            }
            SnnError::InputSizeMismatch { expected, actual } => write!(
                f,
                "input has {actual} pixels but the network expects {expected}"
            ),
        }
    }
}

impl Error for SnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnnError::Tensor(e) => Some(e),
            SnnError::Dnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SnnError {
    fn from(e: TensorError) -> Self {
        SnnError::Tensor(e)
    }
}

impl From<DnnError> for SnnError {
    fn from(e: DnnError) -> Self {
        SnnError::Dnn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SnnError = TensorError::EmptyShape.into();
        assert!(e.to_string().contains("tensor"));
        assert!(std::error::Error::source(&e).is_some());
        let e = SnnError::InputSizeMismatch {
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }
}
