//! Spike recording: per-layer counts and (optionally) sampled per-neuron
//! spike trains for the analysis crate.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Identifies a neuron by layer index and flat index within the layer.
///
/// Layer 0 is the input layer; hidden spiking stages follow in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NeuronId {
    /// Layer index (0 = input layer).
    pub layer: usize,
    /// Flat neuron index within the layer.
    pub index: usize,
}

/// The recorded spike times of one sampled neuron.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTrainRec {
    /// Which neuron this train belongs to.
    pub neuron: NeuronId,
    /// Time steps at which the neuron fired, in increasing order.
    pub times: Vec<u32>,
}

/// How much detail to record during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordLevel {
    /// Only per-layer spike counts (cheap; default).
    Counts,
    /// Counts plus full spike trains for a random sample of neurons in
    /// every layer (the paper samples 10% per layer for Fig. 5).
    Trains {
        /// Fraction of neurons sampled per layer, in `(0, 1]`.
        fraction: f64,
        /// Sampling seed.
        seed: u64,
    },
}

/// Accumulated spike statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct SpikeRecord {
    layer_counts: Vec<u64>,
    steps: u64,
    sampled: HashMap<NeuronId, usize>,
    trains: Vec<SpikeTrainRec>,
}

impl SpikeRecord {
    /// Creates a record for a network whose layer sizes (input layer
    /// first, spiking stages after) are `layer_sizes`.
    pub fn new(layer_sizes: &[usize], level: RecordLevel) -> Self {
        let mut sampled = HashMap::new();
        let mut trains = Vec::new();
        if let RecordLevel::Trains { fraction, seed } = level {
            let fraction = fraction.clamp(0.0, 1.0);
            let mut rng = StdRng::seed_from_u64(seed);
            for (layer, &size) in layer_sizes.iter().enumerate() {
                if size == 0 {
                    continue;
                }
                let take = ((size as f64 * fraction).round() as usize).clamp(1, size);
                let mut idx: Vec<usize> = (0..size).collect();
                idx.shuffle(&mut rng);
                idx.truncate(take);
                for i in idx {
                    let id = NeuronId { layer, index: i };
                    sampled.insert(id, trains.len());
                    trains.push(SpikeTrainRec {
                        neuron: id,
                        times: Vec::new(),
                    });
                }
            }
        }
        SpikeRecord {
            layer_counts: vec![0; layer_sizes.len()],
            steps: 0,
            sampled,
            trains,
        }
    }

    /// Registers the spikes a layer emitted this step. `magnitudes` is the
    /// layer's output buffer (0.0 = no spike).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn observe_layer(&mut self, layer: usize, t: u64, magnitudes: &[f32]) {
        let mut count = 0u64;
        if self.sampled.is_empty() {
            count = magnitudes.iter().filter(|&&m| m != 0.0).count() as u64;
        } else {
            for (index, &m) in magnitudes.iter().enumerate() {
                if m != 0.0 {
                    count += 1;
                    let id = NeuronId { layer, index };
                    if let Some(&slot) = self.sampled.get(&id) {
                        self.trains[slot].times.push(t as u32);
                    }
                }
            }
        }
        self.layer_counts[layer] += count;
    }

    /// Registers a bare spike count for a layer (used for the input layer,
    /// whose encoder reports counts directly).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn add_count(&mut self, layer: usize, count: u64) {
        self.layer_counts[layer] += count;
    }

    /// Marks the end of a simulation step.
    pub fn end_step(&mut self) {
        self.steps += 1;
    }

    /// Per-layer cumulative spike counts (layer 0 = input).
    pub fn layer_counts(&self) -> &[u64] {
        &self.layer_counts
    }

    /// Total spikes across all layers.
    pub fn total_spikes(&self) -> u64 {
        self.layer_counts.iter().sum()
    }

    /// Number of completed simulation steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Recorded spike trains (empty unless [`RecordLevel::Trains`]).
    pub fn trains(&self) -> &[SpikeTrainRec] {
        &self.trains
    }

    /// Consumes the record, returning its spike trains.
    pub fn into_trains(self) -> Vec<SpikeTrainRec> {
        self.trains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_tallies_layers() {
        let mut r = SpikeRecord::new(&[3, 2], RecordLevel::Counts);
        r.observe_layer(0, 0, &[1.0, 0.0, 0.5]);
        r.observe_layer(1, 0, &[0.0, 0.0]);
        r.end_step();
        r.observe_layer(0, 1, &[0.0, 0.0, 1.0]);
        r.observe_layer(1, 1, &[2.0, 0.0]);
        r.end_step();
        assert_eq!(r.layer_counts(), &[3, 1]);
        assert_eq!(r.total_spikes(), 4);
        assert_eq!(r.steps(), 2);
        assert!(r.trains().is_empty());
    }

    #[test]
    fn add_count_accumulates() {
        let mut r = SpikeRecord::new(&[2], RecordLevel::Counts);
        r.add_count(0, 5);
        r.add_count(0, 2);
        assert_eq!(r.layer_counts(), &[7]);
    }

    #[test]
    fn trains_record_times_for_sampled_neurons() {
        let mut r = SpikeRecord::new(
            &[4],
            RecordLevel::Trains {
                fraction: 1.0,
                seed: 0,
            },
        );
        r.observe_layer(0, 0, &[1.0, 0.0, 0.0, 1.0]);
        r.end_step();
        r.observe_layer(0, 1, &[1.0, 0.0, 0.0, 0.0]);
        r.end_step();
        assert_eq!(r.trains().len(), 4);
        let t0 = r.trains().iter().find(|tr| tr.neuron.index == 0).unwrap();
        assert_eq!(t0.times, vec![0, 1]);
        let t3 = r.trains().iter().find(|tr| tr.neuron.index == 3).unwrap();
        assert_eq!(t3.times, vec![0]);
    }

    #[test]
    fn fraction_samples_at_least_one_neuron_per_layer() {
        let r = SpikeRecord::new(
            &[100, 5],
            RecordLevel::Trains {
                fraction: 0.01,
                seed: 1,
            },
        );
        let layer0 = r.trains().iter().filter(|t| t.neuron.layer == 0).count();
        let layer1 = r.trains().iter().filter(|t| t.neuron.layer == 1).count();
        assert_eq!(layer0, 1);
        assert_eq!(layer1, 1);
    }

    #[test]
    fn sampling_is_seeded() {
        let pick = |seed| {
            let r = SpikeRecord::new(
                &[50],
                RecordLevel::Trains {
                    fraction: 0.2,
                    seed,
                },
            );
            let mut ids: Vec<usize> = r.trains().iter().map(|t| t.neuron.index).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(pick(7), pick(7));
        assert_ne!(pick(7), pick(8));
    }
}
