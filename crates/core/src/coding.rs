//! Neural coding taxonomy: input codings, hidden codings, and the hybrid
//! scheme notation `"input-hidden"` used throughout the paper.

use std::fmt;
use std::str::FromStr;

/// How the input layer converts pixel intensities into a drive signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputCoding {
    /// *Real coding*: the analog pixel value is injected as a constant
    /// current each time step (no input spikes). Used by Rueckauer et al.
    Real,
    /// *Rate coding*: a deterministic IF encoder fires unit-magnitude
    /// spikes at a rate proportional to the pixel intensity.
    Rate,
    /// *Phase coding*: the pixel value's binary expansion is emitted with
    /// per-phase weights `2^-(1+t mod k)` (Kim et al. 2018, Eq. 6).
    Phase,
    /// *Time-to-first-spike coding* (Thorpe et al. \[22], discussed in the
    /// paper's background): one spike per window, earlier for brighter
    /// pixels, carrying the pixel value as its magnitude. An extension
    /// beyond the paper's evaluated codings.
    Ttfs,
}

impl InputCoding {
    /// The input codings evaluated in the paper's tables, in presentation
    /// order (TTFS is an extension and deliberately excluded so that
    /// [`CodingScheme::all`] matches the paper's nine combinations).
    pub const ALL: [InputCoding; 3] = [InputCoding::Real, InputCoding::Rate, InputCoding::Phase];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            InputCoding::Real => "real",
            InputCoding::Rate => "rate",
            InputCoding::Phase => "phase",
            InputCoding::Ttfs => "ttfs",
        }
    }
}

impl fmt::Display for InputCoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Threshold policy governing spiking neurons in hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiddenCoding {
    /// Fixed threshold — classical rate coding (Diehl et al. 2015).
    Rate,
    /// Oscillating threshold `V_th(t) = Π(t)·v_th`, `Π(t)=2^-(1+t mod k)`
    /// — weighted spikes (Kim et al. 2018; paper Eqs. 6–7).
    Phase,
    /// Adaptive threshold `V_th(t) = g(t)·v_th` with the burst function
    /// `g(t)=β·g(t−1)` after a spike, else `1` — the paper's proposal
    /// (Eqs. 8–9).
    Burst,
}

impl HiddenCoding {
    /// All hidden codings, in the paper's presentation order.
    pub const ALL: [HiddenCoding; 3] =
        [HiddenCoding::Rate, HiddenCoding::Phase, HiddenCoding::Burst];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            HiddenCoding::Rate => "rate",
            HiddenCoding::Phase => "phase",
            HiddenCoding::Burst => "burst",
        }
    }
}

impl fmt::Display for HiddenCoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hybrid layer-wise coding scheme: one coding for the input layer and
/// one for all hidden layers, written `"input-hidden"` (e.g.
/// `phase-burst`) as in Section 3.2 of the paper.
///
/// ```
/// use bsnn_core::coding::{CodingScheme, HiddenCoding, InputCoding};
///
/// let s: CodingScheme = "phase-burst".parse().unwrap();
/// assert_eq!(s.input, InputCoding::Phase);
/// assert_eq!(s.hidden, HiddenCoding::Burst);
/// assert_eq!(s.to_string(), "phase-burst");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodingScheme {
    /// Input-layer coding.
    pub input: InputCoding,
    /// Hidden-layer coding.
    pub hidden: HiddenCoding,
}

impl CodingScheme {
    /// A scheme from its two components.
    pub fn new(input: InputCoding, hidden: HiddenCoding) -> Self {
        CodingScheme { input, hidden }
    }

    /// All nine combinations evaluated in Table 1 / Fig. 4, in the
    /// paper's row order (input major).
    pub fn all() -> Vec<CodingScheme> {
        let mut out = Vec::with_capacity(9);
        for input in InputCoding::ALL {
            for hidden in HiddenCoding::ALL {
                out.push(CodingScheme { input, hidden });
            }
        }
        out
    }

    /// The paper's recommended configuration: `phase-burst`.
    pub fn recommended() -> Self {
        CodingScheme::new(InputCoding::Phase, HiddenCoding::Burst)
    }
}

impl fmt::Display for CodingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.input, self.hidden)
    }
}

/// Error returned when parsing a [`CodingScheme`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCodingError(String);

impl fmt::Display for ParseCodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid coding scheme `{}` (expected e.g. `phase-burst`)",
            self.0
        )
    }
}

impl std::error::Error for ParseCodingError {}

impl FromStr for CodingScheme {
    type Err = ParseCodingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (inp, hid) = s
            .split_once('-')
            .ok_or_else(|| ParseCodingError(s.to_string()))?;
        let input = match inp {
            "real" => InputCoding::Real,
            "rate" => InputCoding::Rate,
            "phase" => InputCoding::Phase,
            "ttfs" => InputCoding::Ttfs,
            _ => return Err(ParseCodingError(s.to_string())),
        };
        let hidden = match hid {
            "rate" => HiddenCoding::Rate,
            "phase" => HiddenCoding::Phase,
            "burst" => HiddenCoding::Burst,
            _ => return Err(ParseCodingError(s.to_string())),
        };
        Ok(CodingScheme { input, hidden })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_covers_nine() {
        let all = CodingScheme::all();
        assert_eq!(all.len(), 9);
        let mut set = std::collections::HashSet::new();
        for s in &all {
            set.insert(s.to_string());
        }
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn parse_round_trip() {
        for s in CodingScheme::all() {
            let parsed: CodingScheme = s.to_string().parse().unwrap();
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("burst-phase2".parse::<CodingScheme>().is_err());
        assert!("realrate".parse::<CodingScheme>().is_err());
        assert!("burst-rate".parse::<CodingScheme>().is_err()); // burst is not an input coding
    }

    #[test]
    fn ttfs_parses_but_is_not_in_all() {
        let s: CodingScheme = "ttfs-burst".parse().unwrap();
        assert_eq!(s.input, InputCoding::Ttfs);
        assert!(!CodingScheme::all().contains(&s));
        assert_eq!(s.to_string(), "ttfs-burst");
    }

    #[test]
    fn recommended_is_phase_burst() {
        assert_eq!(CodingScheme::recommended().to_string(), "phase-burst");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(InputCoding::Real.name(), "real");
        assert_eq!(HiddenCoding::Burst.name(), "burst");
    }
}
