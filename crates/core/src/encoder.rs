//! Input-layer spike encoders.
//!
//! The encoder converts a static image into a per-time-step drive signal
//! for the first spiking stage. Each call to [`InputEncoder::step`] fills
//! a magnitude buffer (one entry per input neuron, `0.0` = no spike) and
//! returns the number of input spikes emitted that step.

use crate::coding::InputCoding;
use crate::SnnError;

/// Stateful per-image input encoder.
///
/// Construct one per image presentation via [`InputEncoder::new`]; it
/// owns whatever state the coding needs (membrane potentials for rate
/// coding, quantized bit patterns for phase coding).
///
/// ```
/// use bsnn_core::{coding::InputCoding, encoder::InputEncoder};
///
/// let mut enc = InputEncoder::new(InputCoding::Phase, &[0.5, 0.25], 8).unwrap();
/// let mut buf = vec![0.0f32; 2];
/// let spikes = enc.step(0, &mut buf); // phase 0 carries weight 2^-1
/// assert_eq!(spikes, 1);
/// assert_eq!(buf, vec![0.5, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct InputEncoder {
    kind: EncoderKind,
    len: usize,
}

#[derive(Debug, Clone)]
enum EncoderKind {
    /// Analog injection: buffer = pixel values every step.
    Real { pixels: Vec<f32> },
    /// Deterministic IF encoding: `v += x`, fire unit spike at `v ≥ 1`.
    Rate { pixels: Vec<f32>, vmem: Vec<f32> },
    /// Binary expansion with per-phase weights `2^-(1+t mod k)`.
    Phase {
        /// Quantized pixel codes (k bits, MSB = phase 0).
        codes: Vec<u32>,
        period: u32,
    },
    /// One value-magnitude spike per window; brighter pixels fire
    /// earlier: `t_fire = round((1 − x)·(W − 1))` within each window.
    Ttfs {
        pixels: Vec<f32>,
        fire_at: Vec<u32>,
        window: u32,
    },
}

impl InputEncoder {
    /// Creates an encoder for one image.
    ///
    /// `phase_period` is the phase-coding period `k` (ignored by the other
    /// codings). Pixels are clamped to `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `pixels` is empty or
    /// `phase_period` is zero or above 24 (phase weights would underflow
    /// the `u32` code / `f32` precision budget).
    pub fn new(coding: InputCoding, pixels: &[f32], phase_period: u32) -> Result<Self, SnnError> {
        if pixels.is_empty() {
            return Err(SnnError::InvalidConfig("empty input image".into()));
        }
        let clamped: Vec<f32> = pixels.iter().map(|&p| p.clamp(0.0, 1.0)).collect();
        let kind = match coding {
            InputCoding::Real => EncoderKind::Real { pixels: clamped },
            InputCoding::Rate => {
                let n = clamped.len();
                EncoderKind::Rate {
                    pixels: clamped,
                    vmem: vec![0.0; n],
                }
            }
            InputCoding::Phase => {
                if phase_period == 0 || phase_period > 24 {
                    return Err(SnnError::InvalidConfig(format!(
                        "phase period {phase_period} must be in 1..=24"
                    )));
                }
                let max_code = (1u32 << phase_period) - 1;
                let codes = clamped
                    .iter()
                    .map(|&p| {
                        // Round to the nearest k-bit code.
                        ((p * max_code as f32).round() as u32).min(max_code)
                    })
                    .collect();
                EncoderKind::Phase {
                    codes,
                    period: phase_period,
                }
            }
            InputCoding::Ttfs => {
                if phase_period == 0 {
                    return Err(SnnError::InvalidConfig(
                        "ttfs window (phase_period) must be nonzero".into(),
                    ));
                }
                let window = phase_period;
                let fire_at = clamped
                    .iter()
                    .map(|&p| ((1.0 - p) * (window - 1) as f32).round() as u32)
                    .collect();
                EncoderKind::Ttfs {
                    pixels: clamped,
                    fire_at,
                    window,
                }
            }
        };
        Ok(InputEncoder {
            len: pixels.len(),
            kind,
        })
    }

    /// Number of input neurons.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the encoder drives zero neurons (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the drive signal is identical on every step (true only for
    /// real coding). Lets the first spiking stage cache its PSP.
    pub fn is_static(&self) -> bool {
        matches!(self.kind, EncoderKind::Real { .. })
    }

    /// The period `p` such that the drive at step `t` is a pure function
    /// of `t % p`, if the coding is periodic: real coding is the `p = 1`
    /// case, phase coding repeats every period (the codes are static and
    /// the bit/weight depend only on the phase), and TTFS repeats every
    /// window. Rate coding is stateful (integrate-and-fire membranes) and
    /// returns `None`. A periodic drive lets consumers cache everything
    /// derived from the input — spike counts and first-stage PSPs — per
    /// `t % p`, bit-exactly.
    pub fn period(&self) -> Option<u32> {
        match &self.kind {
            EncoderKind::Real { .. } => Some(1),
            EncoderKind::Phase { period, .. } => Some(*period),
            EncoderKind::Ttfs { window, .. } => Some(*window),
            EncoderKind::Rate { .. } => None,
        }
    }

    /// Fills `buf` with this step's spike magnitudes and returns the
    /// number of spikes emitted (always 0 for real coding, which injects
    /// analog current rather than spikes).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn step(&mut self, t: u64, buf: &mut [f32]) -> usize {
        assert_eq!(buf.len(), self.len, "encoder buffer length mismatch");
        match &mut self.kind {
            EncoderKind::Real { pixels } => {
                buf.copy_from_slice(pixels);
                0
            }
            EncoderKind::Rate { pixels, vmem } => {
                let mut spikes = 0usize;
                for ((b, &x), v) in buf.iter_mut().zip(pixels.iter()).zip(vmem.iter_mut()) {
                    *v += x;
                    if *v >= 1.0 {
                        *v -= 1.0;
                        *b = 1.0;
                        spikes += 1;
                    } else {
                        *b = 0.0;
                    }
                }
                spikes
            }
            EncoderKind::Phase { codes, period } => {
                let phase = (t % *period as u64) as u32;
                // Phase 0 carries the MSB: weight Π(t) = 2^-(1+phase)
                // (Eq. 6). One period transmits the k-bit value exactly,
                // so the drive rate is x/k per step — phase coding is
                // *per-period*. DNN→SNN conversion compensates by scaling
                // bias currents with the drive rate (see `convert`).
                let weight = 0.5f32.powi(1 + phase as i32);
                let bit = *period - 1 - phase;
                let mut spikes = 0usize;
                for (b, &code) in buf.iter_mut().zip(codes.iter()) {
                    if (code >> bit) & 1 == 1 {
                        *b = weight;
                        spikes += 1;
                    } else {
                        *b = 0.0;
                    }
                }
                spikes
            }
            EncoderKind::Ttfs {
                pixels,
                fire_at,
                window,
            } => {
                let phase = (t % *window as u64) as u32;
                let mut spikes = 0usize;
                for ((b, &x), &fa) in buf.iter_mut().zip(pixels.iter()).zip(fire_at.iter()) {
                    // Zero pixels never fire (their "first spike" would
                    // carry no information).
                    if x > 0.0 && phase == fa {
                        *b = x;
                        spikes += 1;
                    } else {
                        *b = 0.0;
                    }
                }
                spikes
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_steps(enc: &mut InputEncoder, steps: u64) -> (Vec<Vec<f32>>, usize) {
        let mut out = Vec::new();
        let mut total = 0usize;
        for t in 0..steps {
            let mut buf = vec![0.0f32; enc.len()];
            total += enc.step(t, &mut buf);
            out.push(buf);
        }
        (out, total)
    }

    #[test]
    fn real_injects_constant_analog() {
        let mut enc = InputEncoder::new(InputCoding::Real, &[0.3, 0.7], 8).unwrap();
        assert!(enc.is_static());
        let (frames, spikes) = collect_steps(&mut enc, 3);
        assert_eq!(spikes, 0);
        for f in frames {
            assert_eq!(f, vec![0.3, 0.7]);
        }
    }

    #[test]
    fn rate_firing_rate_tracks_intensity() {
        let mut enc = InputEncoder::new(InputCoding::Rate, &[0.25, 0.75, 0.0], 8).unwrap();
        assert!(!enc.is_static());
        let steps = 400u64;
        let (frames, _) = collect_steps(&mut enc, steps);
        let counts: Vec<usize> = (0..3)
            .map(|i| frames.iter().filter(|f| f[i] > 0.0).count())
            .collect();
        assert!((counts[0] as f32 / steps as f32 - 0.25).abs() < 0.02);
        assert!((counts[1] as f32 / steps as f32 - 0.75).abs() < 0.02);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn rate_spikes_have_unit_magnitude() {
        let mut enc = InputEncoder::new(InputCoding::Rate, &[1.0], 8).unwrap();
        let (frames, total) = collect_steps(&mut enc, 10);
        assert_eq!(total, 10); // x = 1 fires every step
        for f in frames {
            assert_eq!(f[0], 1.0);
        }
    }

    #[test]
    fn phase_period_sum_reconstructs_value() {
        // One period transmits the k-bit quantized pixel value exactly
        // (per-period semantics, Kim et al. 2018).
        let k = 8u32;
        let x = 0.7f32;
        let mut enc = InputEncoder::new(InputCoding::Phase, &[x], k).unwrap();
        let (frames, _) = collect_steps(&mut enc, k as u64);
        let sum: f32 = frames.iter().map(|f| f[0]).sum();
        // quantization error ≤ 2 quanta
        assert!(
            (sum - x).abs() < 2.0 / (1u32 << k) as f32,
            "sum {sum} vs {x}"
        );
    }

    #[test]
    fn phase_pattern_repeats_each_period() {
        let mut enc = InputEncoder::new(InputCoding::Phase, &[0.4, 0.9], 4).unwrap();
        let (frames, _) = collect_steps(&mut enc, 8);
        for p in 0..4 {
            assert_eq!(frames[p], frames[p + 4]);
        }
    }

    #[test]
    fn phase_msb_first() {
        // x = 0.5 with k=4: code = round(0.5 * 15) = 8 = 0b1000 → spike
        // only at phase 0, weight 2^-1.
        let mut enc = InputEncoder::new(InputCoding::Phase, &[0.5], 4).unwrap();
        let (frames, total) = collect_steps(&mut enc, 4);
        assert_eq!(total, 1);
        assert_eq!(frames[0][0], 0.5);
        assert_eq!(frames[1][0], 0.0);
    }

    #[test]
    fn ttfs_bright_pixels_fire_first() {
        let mut enc = InputEncoder::new(InputCoding::Ttfs, &[1.0, 0.5, 0.1], 8).unwrap();
        let (frames, total) = collect_steps(&mut enc, 8);
        assert_eq!(total, 3); // one spike per pixel per window
                              // x = 1.0 fires at phase 0, x = 0.5 at round(0.5·7) = 4,
                              // x = 0.1 at round(0.9·7) = 6.
        assert_eq!(frames[0], vec![1.0, 0.0, 0.0]);
        assert_eq!(frames[4][1], 0.5);
        assert!((frames[6][2] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn ttfs_repeats_each_window() {
        let mut enc = InputEncoder::new(InputCoding::Ttfs, &[0.7], 4).unwrap();
        let (frames, total) = collect_steps(&mut enc, 12);
        assert_eq!(total, 3); // three windows
        assert_eq!(frames[1], frames[5]);
        assert_eq!(frames[5], frames[9]);
    }

    #[test]
    fn ttfs_spike_carries_pixel_value() {
        let mut enc = InputEncoder::new(InputCoding::Ttfs, &[0.3], 8).unwrap();
        let (frames, _) = collect_steps(&mut enc, 8);
        let sum: f32 = frames.iter().map(|f| f[0]).sum();
        assert!((sum - 0.3).abs() < 1e-6);
    }

    #[test]
    fn zero_pixel_never_spikes() {
        for coding in [InputCoding::Rate, InputCoding::Phase, InputCoding::Ttfs] {
            let mut enc = InputEncoder::new(coding, &[0.0], 8).unwrap();
            let (_, total) = collect_steps(&mut enc, 64);
            assert_eq!(total, 0, "{coding:?}");
        }
    }

    #[test]
    fn pixels_clamped() {
        let mut enc = InputEncoder::new(InputCoding::Real, &[-0.5, 1.5], 8).unwrap();
        let mut buf = vec![0.0f32; 2];
        enc.step(0, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0]);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(InputEncoder::new(InputCoding::Real, &[], 8).is_err());
        assert!(InputEncoder::new(InputCoding::Phase, &[0.5], 0).is_err());
        assert!(InputEncoder::new(InputCoding::Phase, &[0.5], 30).is_err());
    }
}
