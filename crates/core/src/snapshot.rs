//! Serialization of converted spiking networks.
//!
//! A [`SpikingNetwork`] is expensive to produce (it requires a trained
//! DNN plus a normalization pass), so deployments want to convert once
//! and ship the result. [`save_network`] / [`load_network`] implement a
//! small versioned binary format (magic `BSNN`, little-endian) over any
//! `Write`/`Read` — pass `&mut file` if you need the file back
//! afterwards.
//!
//! Format version 2 added a [`SnapshotMeta`] block (the model's
//! autotuned `preferred_batch` lockstep width) between the header and
//! the network body, so deployment-time measurements travel with the
//! weights; version 3 extends the block with the per-stage sparse/dense
//! density crossovers measured by the same autotuning pass, version 4
//! appends the packed/dense crossovers for the bit-plane kernels, and
//! version 5 appends an FNV-1a 64 content checksum over the entire
//! stream (magic through body) as an 8-byte little-endian trailer, so a
//! torn or bit-flipped file is rejected with a typed
//! [`SnapshotError::Checksum`] instead of whatever decode error the
//! corruption happens to trip. Version 6 appends the quantized
//! inference artifacts: per-stage quant/dense crossovers, the accuracy
//! gate's eligibility verdicts, and the int8 weight tables themselves
//! (codes + per-column scales), so a serving process installs the exact
//! quantization that passed the gate instead of re-deriving it.
//! Version-1 through version-5 streams still load (missing fields
//! default, pre-v5 streams have no checksum verified). Writers emit
//! version 6.
//!
//! [`save_network_to_path`] writes through a temp file in the target
//! directory and atomically renames it into place, so a directory
//! watcher can never observe (let alone install) a half-written
//! snapshot.
//!
//! Only the *static* structure is serialized (weights, thresholds,
//! geometry); dynamic state (membrane potentials, burst functions) is
//! reset on load, matching what a fresh conversion produces.

use crate::layer::{ResetMode, SpikingLayer, ThresholdPolicy};
use crate::network::SpikingNetwork;
use crate::synapse::{Chw, Synapse};
use crate::SnnError;
use bsnn_tensor::conv::Conv2dGeometry;
use bsnn_tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BSNN";
const VERSION: u32 = 6;

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`] via [`fnv1a`] for a fresh digest).
fn fnv1a_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64 digest of `bytes` — the checksum function of snapshot
/// format v5 (public so tools can verify snapshots without decoding
/// them).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// A `Read` adapter that folds every byte it hands out into a running
/// FNV-1a digest, so the loader can checksum the stream exactly as
/// parsed without buffering it.
struct HashingReader<R> {
    inner: R,
    digest: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            digest: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest = fnv1a_update(self.digest, &buf[..n]);
        Ok(n)
    }
}

/// Deployment metadata carried alongside the network structure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotMeta {
    /// Autotuned lockstep batch width the model should run at
    /// (`0` = no preference recorded; see
    /// [`crate::autotune::autotune_batch`]).
    pub preferred_batch: u32,
    /// Calibrated sparse/dense density crossovers — one per hidden
    /// stage plus the output synapse, in stage order (empty = none
    /// recorded; consumers fall back to
    /// [`crate::batch::DEFAULT_DENSITY_CROSSOVER`]).
    pub density_thresholds: Vec<f32>,
    /// Calibrated packed/dense density crossovers for the bit-plane
    /// kernels, same layout as `density_thresholds` (empty = none
    /// recorded; consumers fall back to
    /// [`crate::batch::DEFAULT_PACKED_CROSSOVER`]).
    pub packed_thresholds: Vec<f32>,
    /// Calibrated quant/dense density crossovers for the int8 kernels,
    /// same layout as `density_thresholds` (empty = none recorded;
    /// consumers fall back to
    /// [`crate::batch::DEFAULT_QUANT_CROSSOVER`]).
    pub quant_thresholds: Vec<f32>,
    /// Per-stage accuracy-gate verdicts from
    /// [`crate::autotune::autotune_batch`]: `true` means the stage may
    /// quantize under `Auto` dispatch (empty = gate never ran, which
    /// consumers treat as all-ineligible).
    pub quant_eligible: Vec<bool>,
    /// Int8 weight tables, one slot per dispatch stage (`None` for
    /// stages with no quantizable weight matrix; empty = no tables
    /// recorded, consumers re-derive from the f32 weights).
    pub quant_tables: Vec<Option<crate::quant::QuantizedDense>>,
}

/// Errors from reading or writing a network snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a BSNN snapshot or uses an unsupported version.
    Format(String),
    /// The v5 content checksum does not match the stream — the file is
    /// torn or bit-flipped.
    Checksum {
        /// Checksum recorded in the stream's trailer.
        expected: u64,
        /// Checksum computed over the stream as read.
        actual: u64,
    },
    /// The decoded structure is internally inconsistent.
    Invalid(SnnError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::Format(msg) => write!(f, "invalid snapshot format: {msg}"),
            SnapshotError::Checksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: stream says {expected:#018x}, \
                 content hashes to {actual:#018x}"
            ),
            SnapshotError::Invalid(e) => write!(f, "snapshot decodes to invalid network: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Invalid(e) => Some(e),
            SnapshotError::Format(_) | SnapshotError::Checksum { .. } => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnnError> for SnapshotError {
    fn from(e: SnnError) -> Self {
        SnapshotError::Invalid(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32_slice<W: Write>(w: &mut W, v: &[f32]) -> io::Result<()> {
    write_u32(w, v.len() as u32)?;
    for &x in v {
        write_f32(w, x)?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn read_f32_vec<R: Read>(r: &mut R) -> Result<Vec<f32>, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 28 {
        return Err(SnapshotError::Format(format!(
            "implausible buffer length {len}"
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

fn write_bool_slice<W: Write>(w: &mut W, v: &[bool]) -> io::Result<()> {
    write_u32(w, v.len() as u32)?;
    for &b in v {
        w.write_all(&[b as u8])?;
    }
    Ok(())
}

fn read_bool_vec<R: Read>(r: &mut R) -> Result<Vec<bool>, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 4097 {
        return Err(SnapshotError::Format(format!(
            "implausible flag count {len}"
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        out.push(match b[0] {
            0 => false,
            1 => true,
            tag => return Err(SnapshotError::Format(format!("unknown flag byte {tag}"))),
        });
    }
    Ok(out)
}

fn write_quant_tables<W: Write>(
    w: &mut W,
    tables: &[Option<crate::quant::QuantizedDense>],
) -> io::Result<()> {
    write_u32(w, tables.len() as u32)?;
    for slot in tables {
        match slot {
            None => w.write_all(&[0u8])?,
            Some(qd) => {
                w.write_all(&[1u8])?;
                write_u32(w, qd.input_len() as u32)?;
                write_u32(w, qd.output_len() as u32)?;
                // i8 codes are raw two's-complement bytes.
                let bytes: Vec<u8> = qd.codes().iter().map(|&c| c as u8).collect();
                w.write_all(&bytes)?;
                for &s in qd.scales() {
                    write_f32(w, s)?;
                }
            }
        }
    }
    Ok(())
}

fn read_quant_tables<R: Read>(
    r: &mut R,
) -> Result<Vec<Option<crate::quant::QuantizedDense>>, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 4097 {
        return Err(SnapshotError::Format(format!(
            "implausible quant table count {len}"
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        match tag[0] {
            0 => out.push(None),
            1 => {
                let in_len = read_u32(r)? as usize;
                let out_len = read_u32(r)? as usize;
                if in_len == 0 || out_len == 0 || in_len.saturating_mul(out_len) > 1 << 28 {
                    return Err(SnapshotError::Format(format!(
                        "implausible quant table shape {in_len}x{out_len}"
                    )));
                }
                let mut bytes = vec![0u8; in_len * out_len];
                r.read_exact(&mut bytes)?;
                let codes: Vec<i8> = bytes.into_iter().map(|b| b as i8).collect();
                let mut scales = Vec::with_capacity(out_len);
                for _ in 0..out_len {
                    scales.push(read_f32(r)?);
                }
                let qd = crate::quant::QuantizedDense::from_parts(in_len, out_len, codes, scales)
                    .map_err(SnapshotError::Invalid)?;
                out.push(Some(qd));
            }
            tag => return Err(SnapshotError::Format(format!("unknown quant tag {tag}"))),
        }
    }
    Ok(out)
}

fn write_geom<W: Write>(w: &mut W, g: &Conv2dGeometry) -> io::Result<()> {
    for v in [
        g.kernel_h, g.kernel_w, g.stride_h, g.stride_w, g.pad_h, g.pad_w,
    ] {
        write_u32(w, v as u32)?;
    }
    Ok(())
}

fn read_geom<R: Read>(r: &mut R) -> io::Result<Conv2dGeometry> {
    Ok(Conv2dGeometry {
        kernel_h: read_u32(r)? as usize,
        kernel_w: read_u32(r)? as usize,
        stride_h: read_u32(r)? as usize,
        stride_w: read_u32(r)? as usize,
        pad_h: read_u32(r)? as usize,
        pad_w: read_u32(r)? as usize,
    })
}

fn write_chw<W: Write>(w: &mut W, c: &Chw) -> io::Result<()> {
    write_u32(w, c.c as u32)?;
    write_u32(w, c.h as u32)?;
    write_u32(w, c.w as u32)
}

fn read_chw<R: Read>(r: &mut R) -> io::Result<Chw> {
    Ok(Chw::new(
        read_u32(r)? as usize,
        read_u32(r)? as usize,
        read_u32(r)? as usize,
    ))
}

fn write_synapse<W: Write>(w: &mut W, s: &Synapse) -> io::Result<()> {
    match s {
        Synapse::Dense { weight } => {
            write_u32(w, 0)?;
            write_u32(w, weight.shape()[0] as u32)?;
            write_u32(w, weight.shape()[1] as u32)?;
            write_f32_slice(w, weight.as_slice())
        }
        Synapse::Conv {
            weight,
            geom,
            in_shape,
            out_shape,
        } => {
            write_u32(w, 1)?;
            for d in weight.shape() {
                write_u32(w, *d as u32)?;
            }
            write_geom(w, geom)?;
            write_chw(w, in_shape)?;
            write_chw(w, out_shape)?;
            write_f32_slice(w, weight.as_slice())
        }
        Synapse::Pool {
            geom,
            in_shape,
            out_shape,
            scale,
        } => {
            write_u32(w, 2)?;
            write_geom(w, geom)?;
            write_chw(w, in_shape)?;
            write_chw(w, out_shape)?;
            write_f32(w, *scale)
        }
    }
}

fn read_synapse<R: Read>(r: &mut R) -> Result<Synapse, SnapshotError> {
    match read_u32(r)? {
        0 => {
            let rows = read_u32(r)? as usize;
            let cols = read_u32(r)? as usize;
            let data = read_f32_vec(r)?;
            let weight = Tensor::from_vec(data, &[rows, cols])
                .map_err(|e| SnapshotError::Invalid(e.into()))?;
            Ok(Synapse::Dense { weight })
        }
        1 => {
            let shape: Vec<usize> = (0..4)
                .map(|_| read_u32(r).map(|v| v as usize))
                .collect::<io::Result<_>>()?;
            let geom = read_geom(r)?;
            let in_shape = read_chw(r)?;
            let out_shape = read_chw(r)?;
            let data = read_f32_vec(r)?;
            let weight =
                Tensor::from_vec(data, &shape).map_err(|e| SnapshotError::Invalid(e.into()))?;
            Ok(Synapse::Conv {
                weight,
                geom,
                in_shape,
                out_shape,
            })
        }
        2 => Ok(Synapse::Pool {
            geom: read_geom(r)?,
            in_shape: read_chw(r)?,
            out_shape: read_chw(r)?,
            scale: read_f32(r)?,
        }),
        tag => Err(SnapshotError::Format(format!("unknown synapse tag {tag}"))),
    }
}

fn write_policy<W: Write>(w: &mut W, p: &ThresholdPolicy) -> io::Result<()> {
    match *p {
        ThresholdPolicy::Fixed { vth } => {
            write_u32(w, 0)?;
            write_f32(w, vth)
        }
        ThresholdPolicy::Phase { vth, period } => {
            write_u32(w, 1)?;
            write_f32(w, vth)?;
            write_u32(w, period)
        }
        ThresholdPolicy::Burst { vth, beta } => {
            write_u32(w, 2)?;
            write_f32(w, vth)?;
            write_f32(w, beta)
        }
    }
}

fn read_policy<R: Read>(r: &mut R) -> Result<ThresholdPolicy, SnapshotError> {
    match read_u32(r)? {
        0 => Ok(ThresholdPolicy::Fixed { vth: read_f32(r)? }),
        1 => Ok(ThresholdPolicy::Phase {
            vth: read_f32(r)?,
            period: read_u32(r)?,
        }),
        2 => Ok(ThresholdPolicy::Burst {
            vth: read_f32(r)?,
            beta: read_f32(r)?,
        }),
        tag => Err(SnapshotError::Format(format!("unknown policy tag {tag}"))),
    }
}

/// Writes a network snapshot with default metadata (pass `&mut writer`
/// to keep ownership).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn save_network<W: Write>(net: &SpikingNetwork, writer: W) -> Result<(), SnapshotError> {
    save_network_with_meta(net, SnapshotMeta::default(), writer)
}

/// Writes a network snapshot carrying `meta` (format version 5: the
/// stream ends with an FNV-1a 64 checksum over everything before it).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn save_network_with_meta<W: Write>(
    net: &SpikingNetwork,
    meta: SnapshotMeta,
    mut writer: W,
) -> Result<(), SnapshotError> {
    // Serialize into memory first so the checksum covers the exact
    // bytes written and the caller's writer sees one contiguous stream.
    let mut buf = Vec::new();
    write_snapshot_body(net, meta, &mut buf)?;
    let digest = fnv1a(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    writer.write_all(&buf)?;
    Ok(())
}

/// Writes a network snapshot to `path` atomically: the bytes go to a
/// `.tmp` sibling first and are renamed into place only once complete,
/// so a concurrent reader (e.g. a snapshot watcher) can never observe a
/// torn file under `path`.
///
/// # Errors
///
/// Returns I/O errors from writing or renaming the temp file.
pub fn save_network_to_path<P: AsRef<std::path::Path>>(
    net: &SpikingNetwork,
    meta: SnapshotMeta,
    path: P,
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        save_network_with_meta(net, meta, &mut file)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Serializes the whole snapshot except the v5 checksum trailer.
fn write_snapshot_body<W: Write>(
    net: &SpikingNetwork,
    meta: SnapshotMeta,
    mut writer: W,
) -> Result<(), SnapshotError> {
    writer.write_all(MAGIC)?;
    write_u32(&mut writer, VERSION)?;
    write_u32(&mut writer, meta.preferred_batch)?;
    write_f32_slice(&mut writer, &meta.density_thresholds)?;
    write_f32_slice(&mut writer, &meta.packed_thresholds)?;
    write_f32_slice(&mut writer, &meta.quant_thresholds)?;
    write_bool_slice(&mut writer, &meta.quant_eligible)?;
    write_quant_tables(&mut writer, &meta.quant_tables)?;
    write_u32(&mut writer, net.input_len() as u32)?;
    write_u32(&mut writer, net.layers().len() as u32)?;
    for layer in net.layers() {
        write_policy(&mut writer, &layer.policy())?;
        write_u32(
            &mut writer,
            match layer.reset_mode() {
                ResetMode::Subtraction => 0,
                ResetMode::Zero => 1,
            },
        )?;
        match layer.bias() {
            Some(b) => {
                write_u32(&mut writer, 1)?;
                write_f32_slice(&mut writer, b)?;
            }
            None => write_u32(&mut writer, 0)?,
        }
        write_synapse(&mut writer, layer.synapse())?;
    }
    write_synapse(&mut writer, net.output_synapse())?;
    match net.output_bias() {
        Some(b) => {
            write_u32(&mut writer, 1)?;
            write_f32_slice(&mut writer, b)?;
        }
        None => write_u32(&mut writer, 0)?,
    }
    Ok(())
}

/// Reads a network snapshot produced by [`save_network`] or
/// [`save_network_with_meta`], discarding the metadata.
///
/// # Errors
///
/// Returns [`SnapshotError::Format`] for corrupt or foreign streams,
/// and [`SnapshotError::Invalid`] if the decoded stages are mutually
/// inconsistent.
pub fn load_network<R: Read>(reader: R) -> Result<SpikingNetwork, SnapshotError> {
    load_network_with_meta(reader).map(|(net, _)| net)
}

/// Reads a network snapshot together with its [`SnapshotMeta`].
/// Version-1 streams (which predate the metadata block) decode with
/// default metadata; version-2 streams (which predate the density
/// crossovers) decode with empty `density_thresholds`; version-3
/// streams (which predate the bit-plane kernels) decode with empty
/// `packed_thresholds`; version-4 streams (which predate the content
/// checksum) decode without integrity verification; version-5 streams
/// (which predate the quantized path) decode with empty quant
/// thresholds, eligibility, and tables.
///
/// # Errors
///
/// Returns [`SnapshotError::Format`] for corrupt or foreign streams,
/// [`SnapshotError::Checksum`] when a v5+ stream's content does not
/// hash to its recorded trailer, and [`SnapshotError::Invalid`] if the
/// decoded stages are mutually inconsistent.
pub fn load_network_with_meta<R: Read>(
    reader: R,
) -> Result<(SpikingNetwork, SnapshotMeta), SnapshotError> {
    let mut reader = HashingReader::new(reader);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::Format("bad magic".into()));
    }
    let version = read_u32(&mut reader)?;
    let meta = match version {
        1 => SnapshotMeta::default(),
        2 => SnapshotMeta {
            preferred_batch: read_u32(&mut reader)?,
            ..SnapshotMeta::default()
        },
        3..=6 => {
            let preferred_batch = read_u32(&mut reader)?;
            let density_thresholds = read_f32_vec(&mut reader)?;
            if density_thresholds.len() > 4097 {
                return Err(SnapshotError::Format(format!(
                    "implausible threshold count {}",
                    density_thresholds.len()
                )));
            }
            let packed_thresholds = if version >= 4 {
                let v = read_f32_vec(&mut reader)?;
                if v.len() > 4097 {
                    return Err(SnapshotError::Format(format!(
                        "implausible packed threshold count {}",
                        v.len()
                    )));
                }
                v
            } else {
                Vec::new()
            };
            let (quant_thresholds, quant_eligible, quant_tables) = if version >= 6 {
                let th = read_f32_vec(&mut reader)?;
                if th.len() > 4097 {
                    return Err(SnapshotError::Format(format!(
                        "implausible quant threshold count {}",
                        th.len()
                    )));
                }
                let el = read_bool_vec(&mut reader)?;
                let tables = read_quant_tables(&mut reader)?;
                (th, el, tables)
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
            SnapshotMeta {
                preferred_batch,
                density_thresholds,
                packed_thresholds,
                quant_thresholds,
                quant_eligible,
                quant_tables,
            }
        }
        other => {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot version {other}"
            )))
        }
    };
    let input_len = read_u32(&mut reader)? as usize;
    let n_layers = read_u32(&mut reader)? as usize;
    if n_layers > 4096 {
        return Err(SnapshotError::Format(format!(
            "implausible layer count {n_layers}"
        )));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let policy = read_policy(&mut reader)?;
        let reset = match read_u32(&mut reader)? {
            0 => ResetMode::Subtraction,
            1 => ResetMode::Zero,
            tag => return Err(SnapshotError::Format(format!("unknown reset tag {tag}"))),
        };
        let bias = match read_u32(&mut reader)? {
            0 => None,
            1 => Some(read_f32_vec(&mut reader)?),
            tag => return Err(SnapshotError::Format(format!("unknown bias tag {tag}"))),
        };
        let synapse = read_synapse(&mut reader)?;
        let mut layer = SpikingLayer::new(synapse, bias, policy)?;
        layer.set_reset_mode(reset);
        layers.push(layer);
    }
    let output_synapse = read_synapse(&mut reader)?;
    let output_bias = match read_u32(&mut reader)? {
        0 => None,
        1 => Some(read_f32_vec(&mut reader)?),
        tag => return Err(SnapshotError::Format(format!("unknown bias tag {tag}"))),
    };
    let net = SpikingNetwork::new(input_len, layers, output_synapse, output_bias)?;
    if version >= 5 {
        // The digest must be captured before the trailer passes through
        // the hashing reader (the checksum covers magic through body).
        let actual = reader.digest;
        let mut trailer = [0u8; 8];
        reader.read_exact(&mut trailer)?;
        let expected = u64::from_le_bytes(trailer);
        if expected != actual {
            return Err(SnapshotError::Checksum { expected, actual });
        }
    }
    Ok((net, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{CodingScheme, HiddenCoding, InputCoding};
    use crate::convert::{convert, ConversionConfig};
    use crate::simulator::{infer_image, EvalConfig};
    use bsnn_data::SynthSpec;
    use bsnn_dnn::models;

    fn sample_network(hidden: HiddenCoding) -> (SpikingNetwork, Vec<f32>, CodingScheme) {
        let (train, test) = SynthSpec::digits().with_counts(6, 2).generate();
        let mut dnn = models::vgg_tiny(1, 12, 12, 10, 0).expect("model");
        let (batch, _) = train.batch(&[0, 1, 2, 3]);
        let scheme = CodingScheme::new(InputCoding::Phase, hidden);
        let net = convert(&mut dnn, &batch, &ConversionConfig::new(scheme)).expect("conversion");
        (net, test.image(0).to_vec(), scheme)
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        for hidden in [HiddenCoding::Rate, HiddenCoding::Phase, HiddenCoding::Burst] {
            let (mut original, image, scheme) = sample_network(hidden);
            let mut buf = Vec::new();
            save_network(&original, &mut buf).expect("save");
            let mut restored = load_network(buf.as_slice()).expect("load");

            let cfg = EvalConfig::new(scheme, 48);
            let a = infer_image(&mut original, &image, &cfg).expect("run original");
            let b = infer_image(&mut restored, &image, &cfg).expect("run restored");
            assert_eq!(a.predictions, b.predictions, "{hidden:?}");
            assert_eq!(a.cum_spikes, b.cum_spikes, "{hidden:?}");
            assert_eq!(
                original.output_potentials(),
                restored.output_potentials(),
                "{hidden:?}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let (net, _, _) = sample_network(HiddenCoding::Burst);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).expect("save");
        let restored = load_network(buf.as_slice()).expect("load");
        assert_eq!(net.input_len(), restored.input_len());
        assert_eq!(net.output_len(), restored.output_len());
        assert_eq!(net.num_neurons(), restored.num_neurons());
        assert_eq!(net.layers().len(), restored.layers().len());
        for (a, b) in net.layers().iter().zip(restored.layers()) {
            assert_eq!(a.policy(), b.policy());
            assert_eq!(a.reset_mode(), b.reset_mode());
            assert_eq!(a.bias(), b.bias());
        }
    }

    #[test]
    fn meta_round_trip_and_v1_v2_compat() {
        let (net, _, _) = sample_network(HiddenCoding::Burst);
        let mut buf = Vec::new();
        save_network_with_meta(
            &net,
            SnapshotMeta {
                preferred_batch: 16,
                density_thresholds: vec![0.28125, 0.09375, 0.0],
                packed_thresholds: vec![0.0625, 0.03125],
                ..SnapshotMeta::default()
            },
            &mut buf,
        )
        .expect("save");
        let (_, meta) = load_network_with_meta(buf.as_slice()).expect("load");
        assert_eq!(meta.preferred_batch, 16);
        assert_eq!(meta.density_thresholds, vec![0.28125, 0.09375, 0.0]);
        assert_eq!(meta.packed_thresholds, vec![0.0625, 0.03125]);
        assert!(meta.quant_thresholds.is_empty());
        assert!(meta.quant_eligible.is_empty());
        assert!(meta.quant_tables.is_empty());
        // A plain save carries no preference.
        let mut plain = Vec::new();
        save_network(&net, &mut plain).expect("save");
        let (_, meta) = load_network_with_meta(plain.as_slice()).expect("load");
        assert_eq!(meta, SnapshotMeta::default());
        // The v6 header is magic + version + preferred_batch + two
        // threshold blocks (count + values each) + three empty quant
        // blocks (count each); the network body follows, and the stream
        // ends with the 8-byte checksum trailer (stripped below —
        // pre-v5 streams have no trailer).
        let quant_block = 4 * 3;
        let body = 16 + 4 * 3 + 4 + 4 * 2 + quant_block;
        let buf = &buf[..buf.len() - 8];
        // A version-1 stream (no meta block at all) still loads, with
        // default metadata.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&buf[body..]);
        let (restored, meta) = load_network_with_meta(v1.as_slice()).expect("load v1");
        assert_eq!(meta, SnapshotMeta::default());
        assert_eq!(restored.input_len(), net.input_len());
        assert_eq!(restored.num_neurons(), net.num_neurons());
        // A version-2 stream (preferred_batch, no thresholds) loads with
        // the preference and empty thresholds.
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&8u32.to_le_bytes());
        v2.extend_from_slice(&buf[body..]);
        let (restored, meta) = load_network_with_meta(v2.as_slice()).expect("load v2");
        assert_eq!(meta.preferred_batch, 8);
        assert!(meta.density_thresholds.is_empty());
        assert_eq!(restored.num_neurons(), net.num_neurons());
        // A version-3 stream (density crossovers, no packed block)
        // loads with empty packed thresholds.
        let mut v3 = Vec::new();
        v3.extend_from_slice(MAGIC);
        v3.extend_from_slice(&3u32.to_le_bytes());
        v3.extend_from_slice(&8u32.to_le_bytes());
        v3.extend_from_slice(&2u32.to_le_bytes());
        v3.extend_from_slice(&0.25f32.to_le_bytes());
        v3.extend_from_slice(&0.5f32.to_le_bytes());
        v3.extend_from_slice(&buf[body..]);
        let (restored, meta) = load_network_with_meta(v3.as_slice()).expect("load v3");
        assert_eq!(meta.preferred_batch, 8);
        assert_eq!(meta.density_thresholds, vec![0.25, 0.5]);
        assert!(meta.packed_thresholds.is_empty());
        assert_eq!(restored.num_neurons(), net.num_neurons());
        // A version-4 stream (pre-quant meta block, no checksum
        // trailer) is the v6 bytes minus trailer and quant blocks with
        // the version rewritten — it loads without integrity
        // verification.
        let mut v4 = buf[..body - quant_block].to_vec();
        v4.extend_from_slice(&buf[body..]);
        v4[4..8].copy_from_slice(&4u32.to_le_bytes());
        let (restored, meta) = load_network_with_meta(v4.as_slice()).expect("load v4");
        assert_eq!(meta.preferred_batch, 16);
        assert_eq!(meta.packed_thresholds, vec![0.0625, 0.03125]);
        assert!(meta.quant_tables.is_empty());
        assert_eq!(restored.num_neurons(), net.num_neurons());
        // A version-5 stream is the same bytes plus a recomputed
        // checksum trailer — it loads with integrity verification and
        // empty quant fields.
        let mut v5 = v4.clone();
        v5[4..8].copy_from_slice(&5u32.to_le_bytes());
        let digest = fnv1a(&v5);
        v5.extend_from_slice(&digest.to_le_bytes());
        let (restored, meta) = load_network_with_meta(v5.as_slice()).expect("load v5");
        assert_eq!(meta.preferred_batch, 16);
        assert!(meta.quant_thresholds.is_empty());
        assert_eq!(restored.num_neurons(), net.num_neurons());
    }

    #[test]
    fn quant_artifacts_round_trip_through_v6() {
        let (net, _, _) = sample_network(HiddenCoding::Burst);
        // Derive real tables for every dispatch stage the way the
        // batched engine does (None for conv/pool stages).
        let mut tables: Vec<Option<crate::quant::QuantizedDense>> = net
            .layers()
            .iter()
            .map(|l| match l.synapse() {
                Synapse::Dense { weight } => crate::quant::QuantizedDense::from_weights(weight),
                _ => None,
            })
            .collect();
        tables.push(match net.output_synapse() {
            Synapse::Dense { weight } => crate::quant::QuantizedDense::from_weights(weight),
            _ => None,
        });
        assert!(
            tables.iter().any(Option::is_some),
            "vgg_tiny has dense stages"
        );
        let n = tables.len();
        let meta = SnapshotMeta {
            preferred_batch: 16,
            density_thresholds: vec![0.25; n],
            packed_thresholds: vec![0.125; n],
            quant_thresholds: vec![0.0625; n],
            quant_eligible: tables.iter().map(Option::is_some).collect(),
            quant_tables: tables,
        };
        let mut buf = Vec::new();
        save_network_with_meta(&net, meta.clone(), &mut buf).expect("save");
        let (restored, got) = load_network_with_meta(buf.as_slice()).expect("load");
        assert_eq!(got, meta, "quant meta must survive the round trip");
        assert_eq!(restored.num_neurons(), net.num_neurons());
        // A corrupted scale inside a quant table must be caught by the
        // checksum or the table validator, never silently accepted.
        let mut bad = buf.clone();
        let at = buf.len() / 2;
        bad[at] ^= 0x40;
        assert!(load_network(bad.as_slice()).is_err());
    }

    #[test]
    fn checksum_rejects_bit_flips_anywhere_in_the_body() {
        let (net, _, _) = sample_network(HiddenCoding::Rate);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).expect("save");
        assert!(load_network(buf.as_slice()).is_ok(), "pristine loads");
        // Flip one bit at several deterministic offsets spread across
        // the stream; every corruption must be rejected, and ones the
        // structural decode can't see must be caught by the checksum.
        let len = buf.len() - 8; // body only; trailer flips are covered below
        let mut checksum_hits = 0;
        for k in 1..=7u64 {
            let at = (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) % len as u64) as usize;
            let mut bad = buf.clone();
            bad[at] ^= 1 << (k % 8);
            match load_network(bad.as_slice()) {
                Ok(_) => panic!("bit flip at {at} loaded"),
                Err(SnapshotError::Checksum { expected, actual }) => {
                    assert_ne!(expected, actual);
                    checksum_hits += 1;
                }
                Err(_) => {} // structural decode tripped first — fine
            }
        }
        assert!(checksum_hits > 0, "checksum must catch silent flips");
        // A flipped trailer byte is also a checksum mismatch.
        let mut bad = buf.clone();
        let at = buf.len() - 3;
        bad[at] ^= 0x10;
        assert!(matches!(
            load_network(bad.as_slice()),
            Err(SnapshotError::Checksum { .. })
        ));
    }

    #[test]
    fn atomic_path_save_round_trips_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!(
            "bsnn-snap-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bsnn");
        let (net, _, _) = sample_network(HiddenCoding::Rate);
        let meta = SnapshotMeta {
            preferred_batch: 4,
            ..SnapshotMeta::default()
        };
        save_network_to_path(&net, meta, &path).expect("atomic save");
        let file = std::fs::File::open(&path).unwrap();
        let (restored, meta) = load_network_with_meta(file).expect("load");
        assert_eq!(meta.preferred_batch, 4);
        assert_eq!(restored.num_neurons(), net.num_neurons());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_network(&b"NOPE00000000"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(_)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            load_network(buf.as_slice()).unwrap_err(),
            SnapshotError::Format(_)
        ));
    }

    #[test]
    fn rejects_truncated_stream() {
        let (net, _, _) = sample_network(HiddenCoding::Rate);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(load_network(buf.as_slice()).is_err());
    }
}
