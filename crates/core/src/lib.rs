#![warn(missing_docs)]
//! # bsnn-core
//!
//! The core contribution of *"Fast and Efficient Information Transmission
//! with Burst Spikes in Deep Spiking Neural Networks"* (Park et al., DAC
//! 2019), implemented as a clock-driven spiking-neural-network simulator:
//!
//! * **Integrate-and-fire neurons with reset-by-subtraction** and weighted
//!   post-synaptic potentials (paper Eqs. 4–5): every spike carries a
//!   *magnitude* equal to the emitting neuron's threshold at fire time, so
//!   the effective synaptic weight is `w·V_th(t)` exactly as in Eq. 5.
//! * **Threshold policies** implementing the three hidden-layer codings:
//!   fixed threshold (rate coding), the phase oscillation of Eq. 6–7
//!   (`Π(t)=2^-(1+t mod k)`, Kim et al. 2018), and the paper's **burst
//!   function** of Eqs. 8–9 (`g(t)=β·g(t−1)` after a spike, else `1`).
//! * **Input encoders** for real, rate, and phase input coding.
//! * **Hybrid coding schemes** combining any input coding with any hidden
//!   coding (`phase-burst` is the paper's best configuration).
//! * **DNN→SNN conversion** with data-based weight normalization (max or
//!   outlier-robust percentile, Rueckauer et al.) consuming trained
//!   [`bsnn_dnn::Sequential`] models.
//! * A **simulator** producing accuracy-versus-time-step curves, latency
//!   to target accuracy, spike counts, and optionally full per-neuron
//!   spike trains for the analysis crate.
//!
//! ## On the burst constant β
//!
//! The paper defines `g(t) = β·g(t−1)` if the neuron spiked at `t−1`,
//! else `g(t) = 1` (Eq. 8), and `V_th(t) = g(t)·v_th` (Eq. 9). We use
//! **β > 1 (default 2.0)**: successive spikes in a burst then carry
//! geometrically growing payloads (`v_th, β·v_th, β²·v_th, …`), which is
//! what Fig. 1-B3 depicts (PSP growing during a burst, i.e. dynamic
//! synaptic potentiation), realizes the paper's claim that burst coding
//! can "dynamically determine the capacity of the transmission in an
//! unbounded range", and reproduces Fig. 2 (smaller `v_th` → more and
//! longer bursts, because the same activation needs more threshold units).
//! Setting β = 1 makes burst coding degenerate exactly into rate coding —
//! used as an ablation in the bench crate.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use bsnn_core::{
//!     convert::{convert, ConversionConfig},
//!     coding::{CodingScheme, HiddenCoding, InputCoding},
//!     simulator::{evaluate_dataset, EvalConfig},
//! };
//! use bsnn_data::SynthSpec;
//! use bsnn_dnn::models;
//!
//! let (train, test) = SynthSpec::digits().with_counts(8, 2).generate();
//! let mut dnn = models::vgg_tiny(1, 12, 12, 10, 0)?;
//! let (norm_batch, _) = train.batch(&[0, 1, 2, 3]);
//! let scheme = CodingScheme::new(InputCoding::Phase, HiddenCoding::Burst);
//! let cfg = ConversionConfig::new(scheme).with_vth(0.125);
//! let mut snn = convert(&mut dnn, &norm_batch, &cfg)?;
//! let eval = evaluate_dataset(&mut snn, &test, &EvalConfig::new(scheme, 32))?;
//! assert!(eval.final_accuracy() >= 0.0);
//! # Ok(())
//! # }
//! ```

pub mod autotune;
pub mod batch;
pub mod coding;
pub mod convert;
pub mod encoder;
pub mod error;
pub mod layer;
pub mod network;
pub mod quant;
pub mod recorder;
pub mod simulator;
pub mod snapshot;
pub mod synapse;

pub use autotune::{autotune_batch, AutotuneConfig, BatchPolicy, BatchProbe};
pub use batch::{
    BatchedNetwork, BatchedStepwiseInference, KernelKind, ProfileSink, ProfileSnapshot,
    StageProfileSnapshot,
};
pub use coding::{CodingScheme, HiddenCoding, InputCoding};
pub use convert::{convert, ConversionConfig, Normalization};
pub use encoder::InputEncoder;
pub use error::SnnError;
pub use layer::{ResetMode, SpikingLayer, ThresholdPolicy};
pub use network::SpikingNetwork;
pub use quant::{QuantScratch, QuantizedDense};
pub use recorder::{NeuronId, RecordLevel, SpikeRecord, SpikeTrainRec};
pub use simulator::{
    evaluate_dataset, evaluate_dataset_batched, evaluate_dataset_parallel, infer_image, EvalConfig,
    EvalResult, ImageResult, StepwiseInference,
};
pub use snapshot::{
    load_network, load_network_with_meta, save_network, save_network_to_path,
    save_network_with_meta, SnapshotError, SnapshotMeta,
};
