//! Per-model lockstep batch-width and density-crossover autotuning.
//!
//! The lockstep engine's win is model-dependent: conv/pool stages are
//! weight-reuse-bound and gain 2–3× at widths 8–16, while small dense
//! stages under sparse spike traffic are event-skip-bound and used to
//! *lose* to the scalar engine. BENCH_core.json records both regimes on
//! the same machine. Two knobs therefore cannot be hardcoded and are
//! measured per model on a short synthetic warm-up:
//!
//! 1. **Density crossovers** — per stage, the spike density below which
//!    the sparse event-list kernel beats the dense lockstep kernel
//!    (micro-benchmarked strategy-vs-strategy on the stage's own
//!    synapse over a density grid; see
//!    [`crate::batch::DispatchPolicy`]).
//! 2. **Preferred batch width** — probed with those crossovers already
//!    installed, so the width decision reflects the
//!    sparsity-adaptive engine that will actually run.
//!
//! Both travel with the model (snapshot metadata v3, registry entry) so
//! every consumer — the batched dataset evaluator, the serving
//! workers — runs each model at its own sweet spot.

use crate::batch::{BatchedNetwork, BatchedStepwiseInference, DispatchMode, DispatchPolicy};
use crate::coding::CodingScheme;
use crate::network::SpikingNetwork;
use crate::simulator::EvalConfig;
use crate::synapse::{KernelScratch, Synapse};
use crate::SnnError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// The widths probed by default: scalar, one SSE quad, and the two
/// micro-batch sizes the serving runtime commonly pops.
pub const DEFAULT_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// Knobs of one autotuning run.
#[derive(Debug, Clone)]
pub struct AutotuneConfig {
    /// Candidate lockstep widths, each probed independently.
    pub widths: Vec<usize>,
    /// Simulated time steps per probe run.
    pub steps: usize,
    /// Wall-clock repetitions per width (best-of, to shed scheduler
    /// noise).
    pub reps: usize,
    /// Relative throughput gain a wider width must show over the best
    /// narrower candidate to be preferred — hysteresis toward small
    /// widths, which cost less memory and queue latency. The default
    /// (15%) is sized to absorb scheduler noise on busy hosts: widths
    /// that only look a few percent apart are really tied, and a tie
    /// should resolve to the narrowest width, while genuine lockstep
    /// wins (conv models measure 2–3×) clear it easily.
    pub min_gain: f64,
    /// Seed of the synthetic warm-up images.
    pub seed: u64,
    /// Phase period `k` the model is served with. The period sets the
    /// input spike density under phase coding, which shifts the
    /// event-skip break-even width — probe with the value the model
    /// will actually run at.
    pub phase_period: u32,
    /// Whether to micro-benchmark each stage's sparse-vs-dense density
    /// crossover (on by default). When off, the engine falls back to
    /// [`crate::batch::DEFAULT_DENSITY_CROSSOVER`] everywhere and the
    /// width probe runs with that default.
    pub calibrate_density: bool,
    /// Wall-clock repetitions per (stage, density, strategy)
    /// measurement (best-of, to shed scheduler noise).
    pub density_reps: usize,
    /// Maximum absolute accuracy delta (as a prediction-agreement
    /// fraction against the f32 engine on the calibration set) a stage
    /// may introduce and still be eligible for quantized dispatch. The
    /// default, 0.5%, matches the paper-reproduction tolerance the
    /// benchmarks gate on. `0.0` demands bit-equal predictions.
    pub quant_delta: f64,
    /// Synthetic calibration images the accuracy gate evaluates per
    /// candidate stage (and once more for the combined eligible set).
    pub quant_gate_images: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            widths: DEFAULT_WIDTHS.to_vec(),
            steps: 64,
            reps: 4,
            min_gain: 0.15,
            seed: 0x5eed,
            phase_period: 8,
            calibrate_density: true,
            density_reps: 3,
            quant_delta: 0.005,
            quant_gate_images: 48,
        }
    }
}

impl AutotuneConfig {
    fn validate(&self) -> Result<(), SnnError> {
        if self.widths.is_empty() || self.widths.contains(&0) {
            return Err(SnnError::InvalidConfig(
                "autotune widths must be nonempty and nonzero".into(),
            ));
        }
        if self.steps == 0 || self.reps == 0 {
            return Err(SnnError::InvalidConfig(
                "autotune steps and reps must be nonzero".into(),
            ));
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err(SnnError::InvalidConfig(format!(
                "autotune min_gain {} must be finite and nonnegative",
                self.min_gain
            )));
        }
        if self.density_reps == 0 {
            return Err(SnnError::InvalidConfig(
                "autotune density_reps must be nonzero".into(),
            ));
        }
        if !self.quant_delta.is_finite() || self.quant_delta < 0.0 {
            return Err(SnnError::InvalidConfig(format!(
                "autotune quant_delta {} must be finite and nonnegative",
                self.quant_delta
            )));
        }
        if self.quant_gate_images == 0 {
            return Err(SnnError::InvalidConfig(
                "autotune quant_gate_images must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// One width's measured throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchProbe {
    /// Lockstep width probed.
    pub width: usize,
    /// Lane-steps per second (images × time steps per wall-clock
    /// second) at that width.
    pub lane_steps_per_sec: f64,
}

/// The measured batch policy of one model: which lockstep width to run
/// it at, plus the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// The width consumers should run this model at.
    pub preferred_batch: usize,
    /// All probed widths, in probe order.
    pub probes: Vec<BatchProbe>,
    /// Calibrated sparse/dense density crossovers, one per hidden stage
    /// plus a final entry for the output synapse — install into the
    /// engine via [`crate::batch::DispatchPolicy`]. Empty when
    /// calibration was disabled (consumers then use
    /// [`crate::batch::DEFAULT_DENSITY_CROSSOVER`]).
    pub density_thresholds: Vec<f32>,
    /// Calibrated packed/dense crossovers, same layout: below a
    /// stage's entry the bit-plane packed kernel preempts the sparse
    /// event replay. Empty when calibration was disabled
    /// ([`crate::batch::DEFAULT_PACKED_CROSSOVER`] applies).
    pub packed_thresholds: Vec<f32>,
    /// Calibrated quantized/dense crossovers, same layout: below a
    /// stage's entry the int8 kernel preempts the packed replay —
    /// consulted only where the stage is also eligible. `0.0` for
    /// conv/pool stages (no weight matrix to quantize) and stages
    /// where int8 never won the grid. Empty when calibration was
    /// disabled.
    pub quant_thresholds: Vec<f32>,
    /// Per-stage accuracy-gate verdicts: `true` only where end-to-end
    /// prediction agreement with the f32 engine on the calibration set
    /// stayed within [`AutotuneConfig::quant_delta`] — per stage *and*
    /// with every eligible stage quantizing at once. Empty when
    /// calibration was disabled (no stage is then eligible).
    pub quant_eligible: Vec<bool>,
}

impl BatchPolicy {
    /// The measured probe for `width`, if it was a candidate.
    pub fn probe_for(&self, width: usize) -> Option<BatchProbe> {
        self.probes.iter().copied().find(|p| p.width == width)
    }

    /// Throughput of the preferred width relative to width 1 (1.0 when
    /// width 1 was not probed).
    pub fn speedup_vs_scalar(&self) -> f64 {
        match (self.probe_for(1), self.probe_for(self.preferred_batch)) {
            (Some(base), Some(best)) if base.lane_steps_per_sec > 0.0 => {
                best.lane_steps_per_sec / base.lane_steps_per_sec
            }
            _ => 1.0,
        }
    }
}

/// Deterministic synthetic warm-up images: intensities in `[0, 1]` with
/// ~40% exact zeros, approximating the mixed sparsity of real spike
/// traffic (all-dense or all-zero probes would flatter the wrong
/// widths).
fn warmup_images(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    let v: f32 = rng.gen_range(0.0..1.0);
                    if v < 0.4 {
                        0.0
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect()
}

/// The densities probed when calibrating a stage's sparse/dense
/// crossover. The crossover is reported as the midpoint between the
/// last density where sparse won and the first where dense won.
const DENSITY_GRID: [f32; 7] = [0.03125, 0.0625, 0.125, 0.25, 0.5, 0.75, 1.0];

/// Relative speed advantage sparse must show to win a grid point —
/// hysteresis toward dense, whose worst case is bounded while a wrongly
/// sparse stage forfeits its weight reuse. 15% (like the width probe's
/// `min_gain`) also absorbs the crossover shift between the calibrated
/// width and other widths the engine may run at.
const SPARSE_WIN_MARGIN: f64 = 1.15;

/// Win margin for the packed and quantized challengers — wider than
/// the sparse one because these strategies carry engine-side costs the
/// stage microbench cannot see: selecting either for any stage k ≥ 1
/// makes every *upstream* fire pass pay a plane build. BENCH v5 showed
/// the 15% margin letting a near-tie stage-0 packed pick drag MLP auto
/// throughput below forced-dense; 25% keeps near-ties dense.
const PACKED_WIN_MARGIN: f64 = 1.25;

/// Slack for the engine-level packed validation pass: a stage's packed
/// crossover survives only if enabling it keeps whole-engine wall
/// clock within this factor of the plane-free baseline. The kernel
/// microbench charges the replay but not the plane build fire pays for
/// it, so a stage can "win" its grid and still lose the engine (BENCH
/// v5's MLP sat 7–9% under forced-dense this way). 2% keeps genuine
/// wins and measurement ties while rejecting configurations that only
/// look good from inside the kernel.
const PLANE_COST_SLACK: f64 = 1.02;

/// A synthetic SoA input of `len × width` lane-elements at spike
/// density `d`.
fn density_input(rng: &mut StdRng, len: usize, width: usize, d: f32) -> Vec<f32> {
    (0..len * width)
        .map(|_| {
            if rng.gen_range(0.0..1.0f32) < d {
                rng.gen_range(0.01..1.0f32)
            } else {
                0.0
            }
        })
        .collect()
}

/// A grid scan's crossover density: `0.0` means "always dense"; a
/// value above 1.0 means the challenger won the whole grid.
fn crossover_from(first_dense_win: Option<usize>) -> f32 {
    match first_dense_win {
        Some(0) => 0.0,
        Some(gi) => (DENSITY_GRID[gi - 1] + DENSITY_GRID[gi]) / 2.0,
        None => 1.01,
    }
}

/// Micro-benchmarks each stage's synapse strategy-vs-strategy over the
/// density grid at lockstep width `width` and returns the per-stage
/// crossover densities (hidden stages, then the output synapse) for
/// all three challengers:
/// `(sparse_thresholds, packed_thresholds, quant_thresholds)`. `0.0`
/// means "always dense"; a value above 1.0 means "always the
/// challenger". The packed and quantized strategies are timed the way
/// the engine runs them per stage: hidden-fed stages (index ≥ 1)
/// replay pre-built bit-planes — fire packs them for free during
/// staging, so the mask build happens outside the timed region — while
/// stage 0 self-packs from the input SoA. All are timed with no
/// magnitude base / no uniform magnitude (every synthetic magnitude
/// reads raw), which is each strategy's worst case — real spike
/// traffic rides the exponent plane. The quantized challenger only
/// exists for dense synapses at widths ≤ 64; elsewhere its crossover
/// is `0.0`. Speed is all this function measures — whether int8 is
/// *accurate enough* is the separate eligibility gate in
/// [`autotune_batch`].
#[allow(clippy::type_complexity)]
fn calibrate_density_thresholds(
    net: &SpikingNetwork,
    width: usize,
    cfg: &AutotuneConfig,
    rng: &mut StdRng,
) -> Result<(Vec<f32>, Vec<f32>, Vec<f32>), SnnError> {
    let mut synapses: Vec<&Synapse> = net.layers().iter().map(|l| l.synapse()).collect();
    synapses.push(net.output_synapse());
    let mut scratch = KernelScratch::default();
    let mut quant_scratch = crate::quant::QuantScratch::default();
    let mut thresholds = Vec::with_capacity(synapses.len());
    let mut packed_thresholds = Vec::with_capacity(synapses.len());
    let mut quant_thresholds = Vec::with_capacity(synapses.len());
    for (stage_idx, syn) in synapses.into_iter().enumerate() {
        let in_len = syn.input_len();
        let out_len = syn.output_len();
        let quant = match syn {
            Synapse::Dense { weight } if width <= 64 => {
                crate::quant::QuantizedDense::from_weights(weight)
            }
            _ => None,
        };
        let mut psp = vec![0.0f32; out_len * width];
        let mut vmem = vec![0.0f32; out_len * width];
        // Iterations per timed measurement, sized so tiny stages are
        // still measurable above timer resolution.
        let iters = (32_768 / (in_len * width).max(1)).clamp(2, 64);
        // Index into the grid of the first density where dense beat
        // each challenger (the grid is scanned in ascending density,
        // where event-driven strategies can only get weaker).
        let mut sparse_lost = None;
        let mut packed_lost = None;
        let mut quant_lost = if quant.is_some() { None } else { Some(0) };
        for (gi, &d) in DENSITY_GRID.iter().enumerate() {
            if sparse_lost.is_some() && packed_lost.is_some() && quant_lost.is_some() {
                break;
            }
            let input = density_input(rng, in_len, width, d);
            // Hidden-fed stages get their bit-planes from fire's
            // staging pass at runtime, so the plane build is not
            // charged to the packed strategy here.
            let masks: Option<Vec<u64>> = (stage_idx >= 1 && width <= 64).then(|| {
                input
                    .chunks_exact(width)
                    .map(crate::synapse::lane_mask)
                    .collect()
            });
            let mut dense_best = f64::INFINITY;
            let mut sparse_best = f64::INFINITY;
            let mut packed_best = f64::INFINITY;
            let mut quant_best = f64::INFINITY;
            // Each strategy is charged its full per-step cost: the
            // kernel plus the integration pass in the layout it
            // produces (the event paths' fold is a transposed add).
            for _ in 0..cfg.density_reps {
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                for _ in 0..iters {
                    syn.accumulate_batch(&input, &mut psp, width)?;
                    crate::batch::integrate(&mut vmem, &psp, false, out_len, width);
                }
                dense_best = dense_best.min(t0.elapsed().as_secs_f64());
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                for _ in 0..iters {
                    syn.accumulate_batch_sparse(&input, &mut psp, width, &mut scratch)?;
                    crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                }
                sparse_best = sparse_best.min(t0.elapsed().as_secs_f64());
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                match &masks {
                    Some(masks) => {
                        for _ in 0..iters {
                            syn.accumulate_batch_packed_planes(
                                &input,
                                &mut psp,
                                width,
                                masks,
                                None,
                                None,
                                &mut scratch,
                            )?;
                            crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                        }
                    }
                    None => {
                        for _ in 0..iters {
                            syn.accumulate_batch_packed(
                                &input,
                                &mut psp,
                                width,
                                None,
                                &mut scratch,
                            )?;
                            crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                        }
                    }
                }
                packed_best = packed_best.min(t0.elapsed().as_secs_f64());
                if let Some(qd) = &quant {
                    psp.iter_mut().for_each(|p| *p = 0.0);
                    let t0 = Instant::now();
                    match &masks {
                        Some(masks) => {
                            for _ in 0..iters {
                                qd.accumulate_packed_planes(
                                    &input,
                                    &mut psp,
                                    width,
                                    masks,
                                    None,
                                    None,
                                    &mut quant_scratch,
                                )?;
                                crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                            }
                        }
                        None => {
                            for _ in 0..iters {
                                qd.accumulate_packed(
                                    &input,
                                    &mut psp,
                                    width,
                                    None,
                                    &mut quant_scratch,
                                )?;
                                crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                            }
                        }
                    }
                    quant_best = quant_best.min(t0.elapsed().as_secs_f64());
                }
            }
            if sparse_lost.is_none() && sparse_best * SPARSE_WIN_MARGIN >= dense_best {
                sparse_lost = Some(gi);
            }
            if packed_lost.is_none() && packed_best * PACKED_WIN_MARGIN >= dense_best {
                packed_lost = Some(gi);
            }
            if quant_lost.is_none() && quant_best * PACKED_WIN_MARGIN >= dense_best {
                quant_lost = Some(gi);
            }
        }
        thresholds.push(crossover_from(sparse_lost));
        packed_thresholds.push(crossover_from(packed_lost));
        quant_thresholds.push(crossover_from(quant_lost));
    }
    Ok((thresholds, packed_thresholds, quant_thresholds))
}

/// Measures `net`'s lockstep throughput at each candidate width on a
/// short synthetic warm-up and returns the width it should run at,
/// together with the calibrated per-stage density crossovers.
///
/// Crossovers are calibrated first (at the widest candidate width,
/// where the sparse/dense trade matters most) and installed into every
/// width probe's engine, so the width decision reflects the
/// sparsity-adaptive engine consumers will actually run. If the
/// preferred width ends up different, the crossovers are re-calibrated
/// at that width.
///
/// `scheme` must be the coding the model serves under — the input
/// coding decides whether the encoder restages the drive every step,
/// which shifts the break-even width. The probe is wall-clock-based:
/// run it on the machine (and core count) that will execute the
/// workload, and expect small run-to-run variation; the `min_gain`
/// hysteresis keeps the decision stable for all but razor-thin ties.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] for degenerate configs and
/// propagates simulation errors.
pub fn autotune_batch(
    net: &SpikingNetwork,
    scheme: CodingScheme,
    cfg: &AutotuneConfig,
) -> Result<BatchPolicy, SnnError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let max_width = *cfg.widths.iter().max().expect("nonempty widths");
    let (mut density_thresholds, mut packed_thresholds, mut quant_thresholds) =
        if cfg.calibrate_density {
            calibrate_density_thresholds(net, max_width, cfg, &mut rng)?
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
    let images = warmup_images(&mut rng, max_width, net.input_len());
    let eval = EvalConfig::new(scheme, cfg.steps).with_phase_period(cfg.phase_period);
    let mut probes = Vec::with_capacity(cfg.widths.len());
    for &width in &cfg.widths {
        let mut engine = BatchedNetwork::new(net.clone(), width)?;
        engine.set_dispatch(DispatchPolicy {
            mode: DispatchMode::Auto,
            thresholds: density_thresholds.clone(),
            packed_thresholds: packed_thresholds.clone(),
            quant_thresholds: Vec::new(),
            quant_eligible: Vec::new(),
        });
        let refs: Vec<&[f32]> = images[..width].iter().map(|v| v.as_slice()).collect();
        let mut best = f64::INFINITY;
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            let mut run = BatchedStepwiseInference::new(&mut engine, &refs, &eval)?;
            while run.advance()? {}
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let lane_steps_per_sec = if best > 0.0 {
            (width * cfg.steps) as f64 / best
        } else {
            f64::INFINITY
        };
        probes.push(BatchProbe {
            width,
            lane_steps_per_sec,
        });
    }
    // Prefer the narrowest width; a wider candidate must beat the
    // incumbent by `min_gain` to take over.
    let mut ranked = probes.clone();
    ranked.sort_by_key(|p| p.width);
    let mut preferred = ranked[0];
    for &probe in &ranked[1..] {
        if probe.lane_steps_per_sec > preferred.lane_steps_per_sec * (1.0 + cfg.min_gain) {
            preferred = probe;
        }
    }
    if cfg.calibrate_density && preferred.width != max_width {
        (density_thresholds, packed_thresholds, quant_thresholds) =
            calibrate_density_thresholds(net, preferred.width, cfg, &mut rng)?;
    }
    if cfg.calibrate_density {
        validate_packed_thresholds(
            net,
            preferred.width,
            cfg,
            &eval,
            &images,
            &density_thresholds,
            &mut packed_thresholds,
        )?;
    }
    let quant_eligible = if cfg.calibrate_density {
        gate_quant_eligibility(
            net,
            scheme,
            cfg,
            preferred.width,
            &density_thresholds,
            &packed_thresholds,
            &quant_thresholds,
            &mut rng,
        )?
    } else {
        Vec::new()
    };
    Ok(BatchPolicy {
        preferred_batch: preferred.width,
        probes,
        density_thresholds,
        packed_thresholds,
        quant_thresholds,
        quant_eligible,
    })
}

/// Best-of-reps wall clock of one full lockstep presentation at
/// `width` under `policy`.
fn engine_secs(
    net: &SpikingNetwork,
    width: usize,
    cfg: &AutotuneConfig,
    eval: &EvalConfig,
    images: &[Vec<f32>],
    policy: DispatchPolicy,
) -> Result<f64, SnnError> {
    let mut engine = BatchedNetwork::new(net.clone(), width)?;
    engine.set_dispatch(policy);
    let refs: Vec<&[f32]> = images[..width].iter().map(|v| v.as_slice()).collect();
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        let mut run = BatchedStepwiseInference::new(&mut engine, &refs, eval)?;
        while run.advance()? {}
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// Engine-level validation of the calibrated packed crossovers: the
/// kernel grid measures the mask replay but not the plane build every
/// fire pass pays once *any* stage can consume planes, so a stage can
/// win its microbench and still slow the whole engine down. Starting
/// from a plane-free baseline, each positive crossover is re-admitted
/// only if whole-engine wall clock stays within [`PLANE_COST_SLACK`]
/// of the best accepted configuration; the rest are zeroed, which lets
/// the engine skip plane construction outright.
fn validate_packed_thresholds(
    net: &SpikingNetwork,
    width: usize,
    cfg: &AutotuneConfig,
    eval: &EvalConfig,
    images: &[Vec<f32>],
    density_thresholds: &[f32],
    packed_thresholds: &mut Vec<f32>,
) -> Result<(), SnnError> {
    if packed_thresholds.iter().all(|&t| t <= 0.0) {
        return Ok(());
    }
    let policy_with = |packed: Vec<f32>| DispatchPolicy {
        mode: DispatchMode::Auto,
        thresholds: density_thresholds.to_vec(),
        packed_thresholds: packed,
        quant_thresholds: Vec::new(),
        quant_eligible: Vec::new(),
    };
    let mut accepted = vec![0.0; packed_thresholds.len()];
    let mut best = engine_secs(net, width, cfg, eval, images, policy_with(accepted.clone()))?;
    for k in 0..packed_thresholds.len() {
        if packed_thresholds[k] <= 0.0 {
            continue;
        }
        let mut trial = accepted.clone();
        trial[k] = packed_thresholds[k];
        let t = engine_secs(net, width, cfg, eval, images, policy_with(trial.clone()))?;
        if t <= best * PLANE_COST_SLACK {
            accepted = trial;
            best = best.min(t);
        }
    }
    *packed_thresholds = accepted;
    Ok(())
}

/// Runs `images` through an engine at `width` under `policy` and
/// returns the per-image argmax predictions.
fn policy_predictions(
    net: &SpikingNetwork,
    width: usize,
    policy: DispatchPolicy,
    images: &[Vec<f32>],
    eval: &EvalConfig,
) -> Result<Vec<usize>, SnnError> {
    let mut engine = BatchedNetwork::new(net.clone(), width)?;
    engine.set_dispatch(policy);
    let mut preds = Vec::with_capacity(images.len());
    for chunk in images.chunks(width) {
        let refs: Vec<&[f32]> = chunk.iter().map(|v| v.as_slice()).collect();
        let mut run = BatchedStepwiseInference::new(&mut engine, &refs, eval)?;
        while run.advance()? {}
        for lane in 0..chunk.len() {
            preds.push(run.prediction(lane));
        }
    }
    Ok(preds)
}

/// The accuracy-delta gate: a stage may quantize under `Auto` only if
/// end-to-end prediction agreement with the f32 engine on a synthetic
/// calibration set stays within [`AutotuneConfig::quant_delta`] —
/// tested per stage with the int8 kernel forced on for that stage
/// alone, and then once more with **every** surviving stage quantizing
/// at once (quantization error compounds across stages; if the
/// combined run fails, the gate refuses all of them).
///
/// Stages whose calibrated quant crossover is `0.0` (int8 never won
/// the speed grid — conv/pool stages always, since they have no weight
/// matrix) are skipped: marking them eligible could only slow the
/// engine down.
#[allow(clippy::too_many_arguments)]
fn gate_quant_eligibility(
    net: &SpikingNetwork,
    scheme: CodingScheme,
    cfg: &AutotuneConfig,
    width: usize,
    density_thresholds: &[f32],
    packed_thresholds: &[f32],
    quant_thresholds: &[f32],
    rng: &mut StdRng,
) -> Result<Vec<bool>, SnnError> {
    let n_stages = quant_thresholds.len();
    let mut eligible = vec![false; n_stages];
    let candidates: Vec<usize> = (0..n_stages)
        .filter(|&k| quant_thresholds[k] > 0.0)
        .collect();
    if candidates.is_empty() || width > 64 {
        return Ok(eligible);
    }
    let images = warmup_images(rng, cfg.quant_gate_images, net.input_len());
    let eval = EvalConfig::new(scheme, cfg.steps).with_phase_period(cfg.phase_period);
    let base_policy = DispatchPolicy {
        mode: DispatchMode::Auto,
        thresholds: density_thresholds.to_vec(),
        packed_thresholds: packed_thresholds.to_vec(),
        quant_thresholds: Vec::new(),
        quant_eligible: Vec::new(),
    };
    let reference = policy_predictions(net, width, base_policy.clone(), &images, &eval)?;
    let agree_floor = 1.0 - cfg.quant_delta;
    let agreement = |preds: &[usize]| {
        let same = preds.iter().zip(&reference).filter(|(a, b)| a == b).count();
        same as f64 / reference.len().max(1) as f64
    };
    // The gate forces each candidate's crossover past the grid top, so
    // the stage quantizes on every step the kernel can run — the
    // harshest exposure the serving engine could see.
    let gate_thresholds: Vec<f32> = quant_thresholds
        .iter()
        .map(|&t| if t > 0.0 { 1.01 } else { 0.0 })
        .collect();
    for &k in &candidates {
        let mut one = vec![false; n_stages];
        one[k] = true;
        let policy = DispatchPolicy {
            quant_thresholds: gate_thresholds.clone(),
            quant_eligible: one,
            ..base_policy.clone()
        };
        let preds = policy_predictions(net, width, policy, &images, &eval)?;
        eligible[k] = agreement(&preds) >= agree_floor;
    }
    if eligible.iter().filter(|&&e| e).count() > 1 {
        let policy = DispatchPolicy {
            quant_thresholds: gate_thresholds,
            quant_eligible: eligible.clone(),
            ..base_policy
        };
        let preds = policy_predictions(net, width, policy, &images, &eval)?;
        if agreement(&preds) < agree_floor {
            // Compounded error across stages: refuse quantization
            // outright rather than guess which stage to keep.
            eligible.iter_mut().for_each(|e| *e = false);
        }
    }
    Ok(eligible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{HiddenCoding, InputCoding};
    use crate::layer::{SpikingLayer, ThresholdPolicy};
    use crate::synapse::Synapse;
    use bsnn_tensor::Tensor;

    fn tiny_network() -> SpikingNetwork {
        let dense = |n: usize| Synapse::Dense {
            weight: Tensor::from_vec(vec![0.3; n * n], &[n, n]).unwrap(),
        };
        let hidden =
            SpikingLayer::new(dense(4), None, ThresholdPolicy::Fixed { vth: 0.5 }).unwrap();
        SpikingNetwork::new(4, vec![hidden], dense(4), None).unwrap()
    }

    fn quick_cfg() -> AutotuneConfig {
        AutotuneConfig {
            steps: 4,
            reps: 1,
            ..AutotuneConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        for bad in [
            AutotuneConfig {
                widths: vec![],
                ..quick_cfg()
            },
            AutotuneConfig {
                widths: vec![0, 4],
                ..quick_cfg()
            },
            AutotuneConfig {
                steps: 0,
                ..quick_cfg()
            },
            AutotuneConfig {
                reps: 0,
                ..quick_cfg()
            },
            AutotuneConfig {
                min_gain: f64::NAN,
                ..quick_cfg()
            },
            AutotuneConfig {
                density_reps: 0,
                ..quick_cfg()
            },
            AutotuneConfig {
                quant_delta: -0.1,
                ..quick_cfg()
            },
            AutotuneConfig {
                quant_delta: f64::NAN,
                ..quick_cfg()
            },
            AutotuneConfig {
                quant_gate_images: 0,
                ..quick_cfg()
            },
        ] {
            assert!(autotune_batch(&net, scheme, &bad).is_err());
        }
    }

    #[test]
    fn density_calibration_covers_every_stage() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let policy = autotune_batch(&net, scheme, &quick_cfg()).unwrap();
        // One crossover per hidden stage plus the output synapse, for
        // both challengers.
        assert_eq!(policy.density_thresholds.len(), net.layers().len() + 1);
        assert_eq!(policy.packed_thresholds.len(), net.layers().len() + 1);
        assert_eq!(policy.quant_thresholds.len(), net.layers().len() + 1);
        assert_eq!(policy.quant_eligible.len(), net.layers().len() + 1);
        for &th in policy
            .density_thresholds
            .iter()
            .chain(&policy.packed_thresholds)
            .chain(&policy.quant_thresholds)
        {
            assert!((0.0..=1.01).contains(&th), "crossover {th} out of range");
        }
        // Eligibility can only be granted where the int8 kernel ever
        // won the speed grid.
        for (k, &e) in policy.quant_eligible.iter().enumerate() {
            if e {
                assert!(
                    policy.quant_thresholds[k] > 0.0,
                    "stage {k} eligible sans win"
                );
            }
        }
        // Calibration off → no thresholds recorded, gate not run.
        let cfg = AutotuneConfig {
            calibrate_density: false,
            ..quick_cfg()
        };
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert!(policy.density_thresholds.is_empty());
        assert!(policy.packed_thresholds.is_empty());
        assert!(policy.quant_thresholds.is_empty());
        assert!(policy.quant_eligible.is_empty());
    }

    #[test]
    fn preferred_width_is_a_candidate_with_evidence() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let cfg = quick_cfg();
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert!(cfg.widths.contains(&policy.preferred_batch));
        assert_eq!(policy.probes.len(), cfg.widths.len());
        for probe in &policy.probes {
            assert!(probe.lane_steps_per_sec > 0.0, "{probe:?}");
        }
        assert!(policy.probe_for(policy.preferred_batch).is_some());
        assert!(policy.probe_for(3).is_none());
        assert!(policy.speedup_vs_scalar() > 0.0);
    }

    #[test]
    fn infinite_gain_pins_scalar() {
        // With an unreachable gain requirement the narrowest width always
        // wins — the hysteresis knob is honored.
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let cfg = AutotuneConfig {
            min_gain: 1e12,
            ..quick_cfg()
        };
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert_eq!(policy.preferred_batch, 1);
    }
}
