//! Per-model lockstep batch-width and density-crossover autotuning.
//!
//! The lockstep engine's win is model-dependent: conv/pool stages are
//! weight-reuse-bound and gain 2–3× at widths 8–16, while small dense
//! stages under sparse spike traffic are event-skip-bound and used to
//! *lose* to the scalar engine. BENCH_core.json records both regimes on
//! the same machine. Two knobs therefore cannot be hardcoded and are
//! measured per model on a short synthetic warm-up:
//!
//! 1. **Density crossovers** — per stage, the spike density below which
//!    the sparse event-list kernel beats the dense lockstep kernel
//!    (micro-benchmarked strategy-vs-strategy on the stage's own
//!    synapse over a density grid; see
//!    [`crate::batch::DispatchPolicy`]).
//! 2. **Preferred batch width** — probed with those crossovers already
//!    installed, so the width decision reflects the
//!    sparsity-adaptive engine that will actually run.
//!
//! Both travel with the model (snapshot metadata v3, registry entry) so
//! every consumer — the batched dataset evaluator, the serving
//! workers — runs each model at its own sweet spot.

use crate::batch::{BatchedNetwork, BatchedStepwiseInference, DispatchMode, DispatchPolicy};
use crate::coding::CodingScheme;
use crate::network::SpikingNetwork;
use crate::simulator::EvalConfig;
use crate::synapse::{KernelScratch, Synapse};
use crate::SnnError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// The widths probed by default: scalar, one SSE quad, and the two
/// micro-batch sizes the serving runtime commonly pops.
pub const DEFAULT_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// Knobs of one autotuning run.
#[derive(Debug, Clone)]
pub struct AutotuneConfig {
    /// Candidate lockstep widths, each probed independently.
    pub widths: Vec<usize>,
    /// Simulated time steps per probe run.
    pub steps: usize,
    /// Wall-clock repetitions per width (best-of, to shed scheduler
    /// noise).
    pub reps: usize,
    /// Relative throughput gain a wider width must show over the best
    /// narrower candidate to be preferred — hysteresis toward small
    /// widths, which cost less memory and queue latency. The default
    /// (15%) is sized to absorb scheduler noise on busy hosts: widths
    /// that only look a few percent apart are really tied, and a tie
    /// should resolve to the narrowest width, while genuine lockstep
    /// wins (conv models measure 2–3×) clear it easily.
    pub min_gain: f64,
    /// Seed of the synthetic warm-up images.
    pub seed: u64,
    /// Phase period `k` the model is served with. The period sets the
    /// input spike density under phase coding, which shifts the
    /// event-skip break-even width — probe with the value the model
    /// will actually run at.
    pub phase_period: u32,
    /// Whether to micro-benchmark each stage's sparse-vs-dense density
    /// crossover (on by default). When off, the engine falls back to
    /// [`crate::batch::DEFAULT_DENSITY_CROSSOVER`] everywhere and the
    /// width probe runs with that default.
    pub calibrate_density: bool,
    /// Wall-clock repetitions per (stage, density, strategy)
    /// measurement (best-of, to shed scheduler noise).
    pub density_reps: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            widths: DEFAULT_WIDTHS.to_vec(),
            steps: 64,
            reps: 4,
            min_gain: 0.15,
            seed: 0x5eed,
            phase_period: 8,
            calibrate_density: true,
            density_reps: 3,
        }
    }
}

impl AutotuneConfig {
    fn validate(&self) -> Result<(), SnnError> {
        if self.widths.is_empty() || self.widths.contains(&0) {
            return Err(SnnError::InvalidConfig(
                "autotune widths must be nonempty and nonzero".into(),
            ));
        }
        if self.steps == 0 || self.reps == 0 {
            return Err(SnnError::InvalidConfig(
                "autotune steps and reps must be nonzero".into(),
            ));
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err(SnnError::InvalidConfig(format!(
                "autotune min_gain {} must be finite and nonnegative",
                self.min_gain
            )));
        }
        if self.density_reps == 0 {
            return Err(SnnError::InvalidConfig(
                "autotune density_reps must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// One width's measured throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchProbe {
    /// Lockstep width probed.
    pub width: usize,
    /// Lane-steps per second (images × time steps per wall-clock
    /// second) at that width.
    pub lane_steps_per_sec: f64,
}

/// The measured batch policy of one model: which lockstep width to run
/// it at, plus the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// The width consumers should run this model at.
    pub preferred_batch: usize,
    /// All probed widths, in probe order.
    pub probes: Vec<BatchProbe>,
    /// Calibrated sparse/dense density crossovers, one per hidden stage
    /// plus a final entry for the output synapse — install into the
    /// engine via [`crate::batch::DispatchPolicy`]. Empty when
    /// calibration was disabled (consumers then use
    /// [`crate::batch::DEFAULT_DENSITY_CROSSOVER`]).
    pub density_thresholds: Vec<f32>,
    /// Calibrated packed/dense crossovers, same layout: below a
    /// stage's entry the bit-plane packed kernel preempts the sparse
    /// event replay. Empty when calibration was disabled
    /// ([`crate::batch::DEFAULT_PACKED_CROSSOVER`] applies).
    pub packed_thresholds: Vec<f32>,
}

impl BatchPolicy {
    /// The measured probe for `width`, if it was a candidate.
    pub fn probe_for(&self, width: usize) -> Option<BatchProbe> {
        self.probes.iter().copied().find(|p| p.width == width)
    }

    /// Throughput of the preferred width relative to width 1 (1.0 when
    /// width 1 was not probed).
    pub fn speedup_vs_scalar(&self) -> f64 {
        match (self.probe_for(1), self.probe_for(self.preferred_batch)) {
            (Some(base), Some(best)) if base.lane_steps_per_sec > 0.0 => {
                best.lane_steps_per_sec / base.lane_steps_per_sec
            }
            _ => 1.0,
        }
    }
}

/// Deterministic synthetic warm-up images: intensities in `[0, 1]` with
/// ~40% exact zeros, approximating the mixed sparsity of real spike
/// traffic (all-dense or all-zero probes would flatter the wrong
/// widths).
fn warmup_images(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    let v: f32 = rng.gen_range(0.0..1.0);
                    if v < 0.4 {
                        0.0
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect()
}

/// The densities probed when calibrating a stage's sparse/dense
/// crossover. The crossover is reported as the midpoint between the
/// last density where sparse won and the first where dense won.
const DENSITY_GRID: [f32; 7] = [0.03125, 0.0625, 0.125, 0.25, 0.5, 0.75, 1.0];

/// Relative speed advantage sparse must show to win a grid point —
/// hysteresis toward dense, whose worst case is bounded while a wrongly
/// sparse stage forfeits its weight reuse. 15% (like the width probe's
/// `min_gain`) also absorbs the crossover shift between the calibrated
/// width and other widths the engine may run at.
const SPARSE_WIN_MARGIN: f64 = 1.15;

/// A synthetic SoA input of `len × width` lane-elements at spike
/// density `d`.
fn density_input(rng: &mut StdRng, len: usize, width: usize, d: f32) -> Vec<f32> {
    (0..len * width)
        .map(|_| {
            if rng.gen_range(0.0..1.0f32) < d {
                rng.gen_range(0.01..1.0f32)
            } else {
                0.0
            }
        })
        .collect()
}

/// A grid scan's crossover density: `0.0` means "always dense"; a
/// value above 1.0 means the challenger won the whole grid.
fn crossover_from(first_dense_win: Option<usize>) -> f32 {
    match first_dense_win {
        Some(0) => 0.0,
        Some(gi) => (DENSITY_GRID[gi - 1] + DENSITY_GRID[gi]) / 2.0,
        None => 1.01,
    }
}

/// Micro-benchmarks each stage's synapse strategy-vs-strategy over the
/// density grid at lockstep width `width` and returns the per-stage
/// crossover densities (hidden stages, then the output synapse) for
/// both challengers: `(sparse_thresholds, packed_thresholds)`. `0.0`
/// means "always dense"; a value above 1.0 means "always the
/// challenger". The packed strategy is timed the way the engine runs
/// it per stage: hidden-fed stages (index ≥ 1) replay pre-built
/// bit-planes — fire packs them for free during staging, so the mask
/// build happens outside the timed region — while stage 0 self-packs
/// from the input SoA. Both are timed with no magnitude base / no
/// uniform magnitude (every synthetic magnitude reads raw), which is
/// the strategy's worst case — real spike traffic rides the exponent
/// plane.
fn calibrate_density_thresholds(
    net: &SpikingNetwork,
    width: usize,
    cfg: &AutotuneConfig,
    rng: &mut StdRng,
) -> Result<(Vec<f32>, Vec<f32>), SnnError> {
    let mut synapses: Vec<&Synapse> = net.layers().iter().map(|l| l.synapse()).collect();
    synapses.push(net.output_synapse());
    let mut scratch = KernelScratch::default();
    let mut thresholds = Vec::with_capacity(synapses.len());
    let mut packed_thresholds = Vec::with_capacity(synapses.len());
    for (stage_idx, syn) in synapses.into_iter().enumerate() {
        let in_len = syn.input_len();
        let out_len = syn.output_len();
        let mut psp = vec![0.0f32; out_len * width];
        let mut vmem = vec![0.0f32; out_len * width];
        // Iterations per timed measurement, sized so tiny stages are
        // still measurable above timer resolution.
        let iters = (32_768 / (in_len * width).max(1)).clamp(2, 64);
        // Index into the grid of the first density where dense beat
        // each challenger (the grid is scanned in ascending density,
        // where event-driven strategies can only get weaker).
        let mut sparse_lost = None;
        let mut packed_lost = None;
        for (gi, &d) in DENSITY_GRID.iter().enumerate() {
            if sparse_lost.is_some() && packed_lost.is_some() {
                break;
            }
            let input = density_input(rng, in_len, width, d);
            // Hidden-fed stages get their bit-planes from fire's
            // staging pass at runtime, so the plane build is not
            // charged to the packed strategy here.
            let masks: Option<Vec<u64>> = (stage_idx >= 1 && width <= 64).then(|| {
                input
                    .chunks_exact(width)
                    .map(crate::synapse::lane_mask)
                    .collect()
            });
            let mut dense_best = f64::INFINITY;
            let mut sparse_best = f64::INFINITY;
            let mut packed_best = f64::INFINITY;
            // Each strategy is charged its full per-step cost: the
            // kernel plus the integration pass in the layout it
            // produces (the event paths' fold is a transposed add).
            for _ in 0..cfg.density_reps {
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                for _ in 0..iters {
                    syn.accumulate_batch(&input, &mut psp, width)?;
                    crate::batch::integrate(&mut vmem, &psp, false, out_len, width);
                }
                dense_best = dense_best.min(t0.elapsed().as_secs_f64());
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                for _ in 0..iters {
                    syn.accumulate_batch_sparse(&input, &mut psp, width, &mut scratch)?;
                    crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                }
                sparse_best = sparse_best.min(t0.elapsed().as_secs_f64());
                psp.iter_mut().for_each(|p| *p = 0.0);
                let t0 = Instant::now();
                match &masks {
                    Some(masks) => {
                        for _ in 0..iters {
                            syn.accumulate_batch_packed_planes(
                                &input,
                                &mut psp,
                                width,
                                masks,
                                None,
                                None,
                                &mut scratch,
                            )?;
                            crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                        }
                    }
                    None => {
                        for _ in 0..iters {
                            syn.accumulate_batch_packed(
                                &input,
                                &mut psp,
                                width,
                                None,
                                &mut scratch,
                            )?;
                            crate::batch::integrate(&mut vmem, &psp, true, out_len, width);
                        }
                    }
                }
                packed_best = packed_best.min(t0.elapsed().as_secs_f64());
            }
            if sparse_lost.is_none() && sparse_best * SPARSE_WIN_MARGIN >= dense_best {
                sparse_lost = Some(gi);
            }
            if packed_lost.is_none() && packed_best * SPARSE_WIN_MARGIN >= dense_best {
                packed_lost = Some(gi);
            }
        }
        thresholds.push(crossover_from(sparse_lost));
        packed_thresholds.push(crossover_from(packed_lost));
    }
    Ok((thresholds, packed_thresholds))
}

/// Measures `net`'s lockstep throughput at each candidate width on a
/// short synthetic warm-up and returns the width it should run at,
/// together with the calibrated per-stage density crossovers.
///
/// Crossovers are calibrated first (at the widest candidate width,
/// where the sparse/dense trade matters most) and installed into every
/// width probe's engine, so the width decision reflects the
/// sparsity-adaptive engine consumers will actually run. If the
/// preferred width ends up different, the crossovers are re-calibrated
/// at that width.
///
/// `scheme` must be the coding the model serves under — the input
/// coding decides whether the encoder restages the drive every step,
/// which shifts the break-even width. The probe is wall-clock-based:
/// run it on the machine (and core count) that will execute the
/// workload, and expect small run-to-run variation; the `min_gain`
/// hysteresis keeps the decision stable for all but razor-thin ties.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] for degenerate configs and
/// propagates simulation errors.
pub fn autotune_batch(
    net: &SpikingNetwork,
    scheme: CodingScheme,
    cfg: &AutotuneConfig,
) -> Result<BatchPolicy, SnnError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let max_width = *cfg.widths.iter().max().expect("nonempty widths");
    let (mut density_thresholds, mut packed_thresholds) = if cfg.calibrate_density {
        calibrate_density_thresholds(net, max_width, cfg, &mut rng)?
    } else {
        (Vec::new(), Vec::new())
    };
    let images = warmup_images(&mut rng, max_width, net.input_len());
    let eval = EvalConfig::new(scheme, cfg.steps).with_phase_period(cfg.phase_period);
    let mut probes = Vec::with_capacity(cfg.widths.len());
    for &width in &cfg.widths {
        let mut engine = BatchedNetwork::new(net.clone(), width)?;
        engine.set_dispatch(DispatchPolicy {
            mode: DispatchMode::Auto,
            thresholds: density_thresholds.clone(),
            packed_thresholds: packed_thresholds.clone(),
        });
        let refs: Vec<&[f32]> = images[..width].iter().map(|v| v.as_slice()).collect();
        let mut best = f64::INFINITY;
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            let mut run = BatchedStepwiseInference::new(&mut engine, &refs, &eval)?;
            while run.advance()? {}
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let lane_steps_per_sec = if best > 0.0 {
            (width * cfg.steps) as f64 / best
        } else {
            f64::INFINITY
        };
        probes.push(BatchProbe {
            width,
            lane_steps_per_sec,
        });
    }
    // Prefer the narrowest width; a wider candidate must beat the
    // incumbent by `min_gain` to take over.
    let mut ranked = probes.clone();
    ranked.sort_by_key(|p| p.width);
    let mut preferred = ranked[0];
    for &probe in &ranked[1..] {
        if probe.lane_steps_per_sec > preferred.lane_steps_per_sec * (1.0 + cfg.min_gain) {
            preferred = probe;
        }
    }
    if cfg.calibrate_density && preferred.width != max_width {
        (density_thresholds, packed_thresholds) =
            calibrate_density_thresholds(net, preferred.width, cfg, &mut rng)?;
    }
    Ok(BatchPolicy {
        preferred_batch: preferred.width,
        probes,
        density_thresholds,
        packed_thresholds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{HiddenCoding, InputCoding};
    use crate::layer::{SpikingLayer, ThresholdPolicy};
    use crate::synapse::Synapse;
    use bsnn_tensor::Tensor;

    fn tiny_network() -> SpikingNetwork {
        let dense = |n: usize| Synapse::Dense {
            weight: Tensor::from_vec(vec![0.3; n * n], &[n, n]).unwrap(),
        };
        let hidden =
            SpikingLayer::new(dense(4), None, ThresholdPolicy::Fixed { vth: 0.5 }).unwrap();
        SpikingNetwork::new(4, vec![hidden], dense(4), None).unwrap()
    }

    fn quick_cfg() -> AutotuneConfig {
        AutotuneConfig {
            steps: 4,
            reps: 1,
            ..AutotuneConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        for bad in [
            AutotuneConfig {
                widths: vec![],
                ..quick_cfg()
            },
            AutotuneConfig {
                widths: vec![0, 4],
                ..quick_cfg()
            },
            AutotuneConfig {
                steps: 0,
                ..quick_cfg()
            },
            AutotuneConfig {
                reps: 0,
                ..quick_cfg()
            },
            AutotuneConfig {
                min_gain: f64::NAN,
                ..quick_cfg()
            },
            AutotuneConfig {
                density_reps: 0,
                ..quick_cfg()
            },
        ] {
            assert!(autotune_batch(&net, scheme, &bad).is_err());
        }
    }

    #[test]
    fn density_calibration_covers_every_stage() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let policy = autotune_batch(&net, scheme, &quick_cfg()).unwrap();
        // One crossover per hidden stage plus the output synapse, for
        // both challengers.
        assert_eq!(policy.density_thresholds.len(), net.layers().len() + 1);
        assert_eq!(policy.packed_thresholds.len(), net.layers().len() + 1);
        for &th in policy
            .density_thresholds
            .iter()
            .chain(&policy.packed_thresholds)
        {
            assert!((0.0..=1.01).contains(&th), "crossover {th} out of range");
        }
        // Calibration off → no thresholds recorded.
        let cfg = AutotuneConfig {
            calibrate_density: false,
            ..quick_cfg()
        };
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert!(policy.density_thresholds.is_empty());
        assert!(policy.packed_thresholds.is_empty());
    }

    #[test]
    fn preferred_width_is_a_candidate_with_evidence() {
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let cfg = quick_cfg();
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert!(cfg.widths.contains(&policy.preferred_batch));
        assert_eq!(policy.probes.len(), cfg.widths.len());
        for probe in &policy.probes {
            assert!(probe.lane_steps_per_sec > 0.0, "{probe:?}");
        }
        assert!(policy.probe_for(policy.preferred_batch).is_some());
        assert!(policy.probe_for(3).is_none());
        assert!(policy.speedup_vs_scalar() > 0.0);
    }

    #[test]
    fn infinite_gain_pins_scalar() {
        // With an unreachable gain requirement the narrowest width always
        // wins — the hysteresis knob is honored.
        let net = tiny_network();
        let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
        let cfg = AutotuneConfig {
            min_gain: 1e12,
            ..quick_cfg()
        };
        let policy = autotune_batch(&net, scheme, &cfg).unwrap();
        assert_eq!(policy.preferred_batch, 1);
    }
}
