//! DNN→SNN conversion with data-based weight normalization.
//!
//! Implements the conversion pipeline of the paper's Section 2.3:
//!
//! * weights are imported from a trained [`Sequential`] DNN,
//! * activations are recorded on a normalization batch and each stage's
//!   weights/biases are rescaled by `λ_{l-1}/λ_l` (data-based weight
//!   normalization, Diehl et al. 2015), where `λ_l` is the maximum — or,
//!   for outlier-robust normalization (Rueckauer et al. 2016), a high
//!   percentile — of the stage's ReLU activations,
//! * biases become per-step constant currents (normalized-bias rule),
//! * average pooling becomes a spiking stage with uniform fan-in weights,
//! * the final dense layer becomes a non-spiking accumulator.

use crate::coding::{CodingScheme, HiddenCoding, InputCoding};
use crate::layer::{ResetMode, SpikingLayer, ThresholdPolicy};
use crate::network::SpikingNetwork;
use crate::synapse::{Chw, Synapse};
use crate::SnnError;
use bsnn_dnn::{LayerBox, Sequential};
use bsnn_tensor::Tensor;

/// Data-based normalization method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Normalization {
    /// λ = maximum activation (Diehl et al. 2015).
    Max,
    /// λ = p-th percentile of the activations — robust to outliers
    /// (Rueckauer et al. 2016). `99.9` is the customary choice.
    Percentile(f32),
}

impl Normalization {
    fn lambda(&self, values: &Tensor) -> f32 {
        let v = match self {
            Normalization::Max => values.max(),
            Normalization::Percentile(p) => percentile(values.as_slice(), *p),
        };
        if v <= f32::EPSILON || !v.is_finite() {
            1.0
        } else {
            v
        }
    }
}

/// The p-th percentile (nearest-rank) of `values`; 0.0 for an empty slice.
pub fn percentile(values: &[f32], p: f32) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f32).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Conversion parameters: coding scheme, thresholds, and normalization.
///
/// The full [`CodingScheme`] matters to conversion (not just the hidden
/// coding) because the input coding sets the network's **drive rate** ρ —
/// the fraction of each activation delivered per time step. Real and rate
/// input deliver `x` per step (ρ = 1); phase input delivers the value
/// once per period (ρ = 1/k, Kim et al. 2018). Bias currents and the
/// phase-hidden threshold are scaled by ρ so every hybrid combination is
/// correctly calibrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionConfig {
    /// The hybrid coding scheme the network will be run with.
    pub scheme: CodingScheme,
    /// Burst threshold constant `v_th` (the precision knob; paper sweeps
    /// 0.5 … 0.03125, default 0.125).
    pub vth: f32,
    /// Burst constant β (Eq. 8; > 1, default 2.0 — see crate docs).
    pub beta: f32,
    /// Phase-coding period `k` (Eq. 6, default 8).
    pub phase_period: u32,
    /// Threshold for rate-coded hidden layers (default 1.0 — activations
    /// are normalized to ≈ 1, the classic Diehl setting).
    pub rate_vth: f32,
    /// Base threshold for phase-coded hidden layers. `None` (default)
    /// selects `k` (the phase period), which calibrates the maximum
    /// per-step average emission `vth·(1−2^−k)/k` to ≈ 1 — the same
    /// dynamic range as rate and burst stages (see DESIGN.md §6).
    pub phase_vth: Option<f32>,
    /// Data-based normalization method (default robust 99.9 percentile).
    pub normalization: Normalization,
    /// Membrane reset rule (default reset-by-subtraction, Eq. 4;
    /// [`ResetMode::Zero`] reproduces the lossy Eq. 3 baseline).
    pub reset: ResetMode,
}

impl ConversionConfig {
    /// Default configuration for a coding scheme.
    pub fn new(scheme: CodingScheme) -> Self {
        ConversionConfig {
            scheme,
            vth: 0.125,
            beta: 2.0,
            phase_period: 8,
            rate_vth: 1.0,
            phase_vth: None,
            normalization: Normalization::Percentile(99.9),
            reset: ResetMode::Subtraction,
        }
    }

    /// Sets the membrane reset rule.
    pub fn with_reset_mode(mut self, reset: ResetMode) -> Self {
        self.reset = reset;
        self
    }

    /// Sets the burst threshold constant `v_th`.
    pub fn with_vth(mut self, vth: f32) -> Self {
        self.vth = vth;
        self
    }

    /// Sets the burst constant β.
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the phase period `k`.
    pub fn with_phase_period(mut self, k: u32) -> Self {
        self.phase_period = k;
        self
    }

    /// Sets the normalization method.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// The network's drive rate ρ: the fraction of each activation the
    /// input coding delivers per time step (1 for real/rate input, `1/k`
    /// for per-period phase input).
    pub fn drive_rate(&self) -> f32 {
        match self.scheme.input {
            InputCoding::Real | InputCoding::Rate => 1.0,
            // Phase transmits the value once per period; TTFS emits one
            // value-magnitude spike per window of the same length.
            InputCoding::Phase | InputCoding::Ttfs => 1.0 / self.phase_period as f32,
        }
    }

    /// The threshold policy hidden stages receive under this config.
    ///
    /// Phase-hidden stages default to `vth = k·ρ`, which calibrates their
    /// maximum per-step emission to the network's drive rate: `vth = 1`
    /// under phase input (Kim et al.'s setting) and `vth = k` under
    /// real/rate input.
    pub fn policy(&self) -> ThresholdPolicy {
        match self.scheme.hidden {
            HiddenCoding::Rate => ThresholdPolicy::Fixed { vth: self.rate_vth },
            HiddenCoding::Phase => ThresholdPolicy::Phase {
                vth: self
                    .phase_vth
                    .unwrap_or(self.phase_period as f32 * self.drive_rate()),
                period: self.phase_period,
            },
            HiddenCoding::Burst => ThresholdPolicy::Burst {
                vth: self.vth,
                beta: self.beta,
            },
        }
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> Result<(), SnnError> {
        self.policy().validate()?;
        if self.phase_period == 0 || self.phase_period > 24 {
            return Err(SnnError::InvalidConfig(format!(
                "phase period {} must be in 1..=24",
                self.phase_period
            )));
        }
        if let Normalization::Percentile(p) = self.normalization {
            if !(0.0..=100.0).contains(&p) {
                return Err(SnnError::InvalidConfig(format!(
                    "percentile {p} must be in [0, 100]"
                )));
            }
        }
        Ok(())
    }
}

/// What a DNN layer becomes in the SNN.
enum StagePlan {
    Hidden {
        synapse: Synapse,
        bias: Option<Vec<f32>>,
        lambda_idx: usize,
    },
    Pool {
        geom: bsnn_tensor::conv::Conv2dGeometry,
        in_shape: Chw,
        out_shape: Chw,
        lambda_idx: usize,
    },
    Output {
        synapse_weight: Tensor,
        bias: Vec<f32>,
    },
}

/// Converts a trained DNN into a spiking network.
///
/// `norm_batch` is an `(n, c, h, w)` batch of *training* images used for
/// data-based normalization (a few dozen images suffice).
///
/// # Errors
///
/// * [`SnnError::UnsupportedLayer`] if the model contains a structure the
///   converter cannot map (e.g. a hidden weighted layer without a ReLU, or
///   a model not ending in a dense classifier).
/// * [`SnnError::InvalidConfig`] for bad conversion parameters.
/// * Tensor/DNN errors from running the normalization forward pass.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bsnn_core::convert::{convert, ConversionConfig};
/// use bsnn_core::coding::{CodingScheme, HiddenCoding, InputCoding};
/// use bsnn_data::SynthSpec;
/// use bsnn_dnn::models;
///
/// let (train, _) = SynthSpec::digits().with_counts(4, 1).generate();
/// let mut dnn = models::vgg_tiny(1, 12, 12, 10, 0)?;
/// let (batch, _) = train.batch(&[0, 1, 2, 3]);
/// let snn = convert(&mut dnn, &batch, &ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Burst)))?;
/// assert_eq!(snn.input_len(), 12 * 12);
/// assert_eq!(snn.output_len(), 10);
/// # Ok(())
/// # }
/// ```
pub fn convert(
    model: &mut Sequential,
    norm_batch: &Tensor,
    config: &ConversionConfig,
) -> Result<SpikingNetwork, SnnError> {
    config.validate()?;
    let (_, acts) = model.forward_collect(norm_batch)?;
    let layers = model.layers();

    // Shape of the data *entering* each layer (batch dim stripped later).
    let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(layers.len() + 1);
    shapes.push(norm_batch.shape().to_vec());
    for a in &acts {
        shapes.push(a.shape().to_vec());
    }

    let chw_of = |shape: &[usize]| -> Result<Chw, SnnError> {
        if shape.len() != 4 {
            return Err(SnnError::UnsupportedLayer(format!(
                "expected NCHW shape, got {shape:?}"
            )));
        }
        Ok(Chw::new(shape[1], shape[2], shape[3]))
    };

    // Plan the stages.
    let mut plans: Vec<StagePlan> = Vec::new();
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            LayerBox::Conv2d(conv) => {
                let relu_idx = find_following_relu(layers, i);
                let in_shape = chw_of(&shapes[i])?;
                let out_shape = chw_of(&shapes[i + 1])?;
                let synapse = Synapse::Conv {
                    weight: conv.weight.value.clone(),
                    geom: conv.geom,
                    in_shape,
                    out_shape,
                };
                // Conv biases are per-channel; spiking stages need one
                // constant current per neuron, so broadcast across the
                // spatial plane.
                let plane = out_shape.h * out_shape.w;
                let bias: Vec<f32> = conv
                    .bias
                    .value
                    .as_slice()
                    .iter()
                    .flat_map(|&b| std::iter::repeat_n(b, plane))
                    .collect();
                match relu_idx {
                    Some(r) => plans.push(StagePlan::Hidden {
                        synapse,
                        bias: Some(bias),
                        lambda_idx: r,
                    }),
                    None => {
                        return Err(SnnError::UnsupportedLayer(
                            "convolution without a following ReLU".into(),
                        ))
                    }
                }
            }
            LayerBox::Dense(dense) => {
                let relu_idx = find_following_relu(layers, i);
                match relu_idx {
                    Some(r) => plans.push(StagePlan::Hidden {
                        synapse: Synapse::Dense {
                            weight: dense.weight.value.clone(),
                        },
                        bias: Some(dense.bias.value.as_slice().to_vec()),
                        lambda_idx: r,
                    }),
                    None => {
                        // Must be the classifier head: only pass-through
                        // layers may follow.
                        if layers[i + 1..].iter().any(is_weighted_or_pool) {
                            return Err(SnnError::UnsupportedLayer(
                                "dense layer without ReLU before further weighted layers".into(),
                            ));
                        }
                        plans.push(StagePlan::Output {
                            synapse_weight: dense.weight.value.clone(),
                            bias: dense.bias.value.as_slice().to_vec(),
                        });
                    }
                }
            }
            LayerBox::AvgPool2d(pool) => {
                let in_shape = chw_of(&shapes[i])?;
                let out_shape = chw_of(&shapes[i + 1])?;
                plans.push(StagePlan::Pool {
                    geom: pool.geom,
                    in_shape,
                    out_shape,
                    lambda_idx: i,
                });
            }
            LayerBox::MaxPool2d(_) => {
                return Err(SnnError::UnsupportedLayer(
                    "max pooling has no spiking equivalent — run \
                     bsnn_dnn::constrain::constrain_for_conversion first"
                        .into(),
                ))
            }
            LayerBox::Relu(_) | LayerBox::Flatten(_) | LayerBox::Dropout(_) => {}
        }
        i += 1;
    }

    let Some(StagePlan::Output { .. }) = plans.last() else {
        return Err(SnnError::UnsupportedLayer(
            "model must end in a dense classifier without ReLU".into(),
        ));
    };

    // Build spiking stages with the λ-chain.
    let policy = config.policy();
    let input_len = {
        let s = norm_batch.shape();
        s[1..].iter().product()
    };
    let mut lambda_prev = 1.0f32; // inputs live in [0, 1]
    let rho = config.drive_rate();
    let mut spiking = Vec::new();
    let mut output = None;
    for plan in plans {
        match plan {
            StagePlan::Hidden {
                synapse,
                bias,
                lambda_idx,
            } => {
                let lambda = config.normalization.lambda(&acts[lambda_idx]);
                let scale = lambda_prev / lambda;
                let synapse = scale_synapse(synapse, scale);
                // Bias currents are scaled by the drive rate ρ so that the
                // bias-to-signal ratio matches the DNN regardless of how
                // fast the input coding delivers information.
                let bias = bias.map(|b| b.iter().map(|x| x * rho / lambda).collect());
                let mut layer = SpikingLayer::new(synapse, bias, policy)?;
                layer.set_reset_mode(config.reset);
                spiking.push(layer);
                lambda_prev = lambda;
            }
            StagePlan::Pool {
                geom,
                in_shape,
                out_shape,
                lambda_idx,
            } => {
                let lambda = config.normalization.lambda(&acts[lambda_idx]);
                let synapse = Synapse::Pool {
                    geom,
                    in_shape,
                    out_shape,
                    scale: lambda_prev / lambda,
                };
                let mut layer = SpikingLayer::new(synapse, None, policy)?;
                layer.set_reset_mode(config.reset);
                spiking.push(layer);
                lambda_prev = lambda;
            }
            StagePlan::Output {
                synapse_weight,
                bias,
            } => {
                // λ_out = 1: scale weights by λ_prev so accumulated
                // potentials are proportional to the true logits.
                let weight = synapse_weight.scale(lambda_prev);
                let bias: Vec<f32> = bias.iter().map(|x| x * rho).collect();
                output = Some((Synapse::Dense { weight }, bias));
            }
        }
    }
    let (out_syn, out_bias) = output.expect("validated above");
    SpikingNetwork::new(input_len, spiking, out_syn, Some(out_bias))
}

fn find_following_relu(layers: &[LayerBox], i: usize) -> Option<usize> {
    for (j, l) in layers.iter().enumerate().skip(i + 1) {
        match l {
            LayerBox::Relu(_) => return Some(j),
            LayerBox::Dropout(_) | LayerBox::Flatten(_) => continue,
            _ => return None,
        }
    }
    None
}

fn is_weighted_or_pool(l: &LayerBox) -> bool {
    matches!(
        l,
        LayerBox::Dense(_) | LayerBox::Conv2d(_) | LayerBox::AvgPool2d(_) | LayerBox::MaxPool2d(_)
    )
}

fn scale_synapse(synapse: Synapse, scale: f32) -> Synapse {
    match synapse {
        Synapse::Dense { weight } => Synapse::Dense {
            weight: weight.scale(scale),
        },
        Synapse::Conv {
            weight,
            geom,
            in_shape,
            out_shape,
        } => Synapse::Conv {
            weight: weight.scale(scale),
            geom,
            in_shape,
            out_shape,
        },
        Synapse::Pool {
            geom,
            in_shape,
            out_shape,
            scale: s,
        } => Synapse::Pool {
            geom,
            in_shape,
            out_shape,
            scale: s * scale,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsnn_data::SynthSpec;
    use bsnn_dnn::models;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn normalization_lambda_guards_zero() {
        let z = Tensor::zeros(&[4]);
        assert_eq!(Normalization::Max.lambda(&z), 1.0);
    }

    #[test]
    fn config_builders_and_validation() {
        let cfg = ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Burst))
            .with_vth(0.0625)
            .with_beta(4.0)
            .with_phase_period(6)
            .with_normalization(Normalization::Max);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.vth, 0.0625);
        assert!(matches!(
            cfg.policy(),
            ThresholdPolicy::Burst { vth, beta } if vth == 0.0625 && beta == 4.0
        ));
        assert!(
            ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Burst))
                .with_vth(-1.0)
                .validate()
                .is_err()
        );
    }

    #[test]
    fn convert_vgg_tiny_structure() {
        let (train, _) = SynthSpec::digits().with_counts(4, 1).generate();
        let mut dnn = models::vgg_tiny(1, 12, 12, 10, 0).unwrap();
        let (batch, _) = train.batch(&[0, 1, 2, 3]);
        let snn = convert(
            &mut dnn,
            &batch,
            &ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Rate)),
        )
        .unwrap();
        // stages: conv(+relu), pool; output dense
        assert_eq!(snn.layers().len(), 2);
        assert_eq!(snn.input_len(), 144);
        assert_eq!(snn.output_len(), 10);
        // conv stage has 8×12×12 neurons, pool stage 8×6×6
        assert_eq!(snn.layers()[0].len(), 8 * 12 * 12);
        assert_eq!(snn.layers()[1].len(), 8 * 6 * 6);
    }

    #[test]
    fn convert_vgg_small_counts_stages() {
        let (train, _) = SynthSpec::cifar10().with_counts(2, 1).generate();
        let mut dnn = models::vgg_small(3, 16, 16, 10, 0).unwrap();
        let (batch, _) = train.batch(&[0, 1]);
        let snn = convert(
            &mut dnn,
            &batch,
            &ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Burst)),
        )
        .unwrap();
        // conv,conv,pool,conv,conv,pool,dense(+relu) = 7 hidden stages
        assert_eq!(snn.layers().len(), 7);
    }

    #[test]
    fn mlp_converts() {
        let (train, _) = SynthSpec::digits().with_counts(4, 1).generate();
        let mut dnn = models::mlp(144, &[32, 16], 10, 0).unwrap();
        let (batch, _) = train.batch(&[0, 1, 2, 3]);
        let snn = convert(
            &mut dnn,
            &batch,
            &ConversionConfig::new(CodingScheme::new(InputCoding::Real, HiddenCoding::Burst)),
        )
        .unwrap();
        assert_eq!(snn.layers().len(), 2);
        assert_eq!(snn.layers()[0].len(), 32);
    }

    #[test]
    fn percentile_vs_max_changes_scale() {
        // With an outlier activation, percentile normalization should give
        // a smaller λ (larger weights) than max normalization.
        let mut v: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        v.push(100.0); // outlier
        let t = Tensor::from_vec(v, &[1001]).unwrap();
        let lmax = Normalization::Max.lambda(&t);
        let lper = Normalization::Percentile(99.0).lambda(&t);
        assert_eq!(lmax, 100.0);
        assert!(lper < 1.1);
    }
}
