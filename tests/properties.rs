//! Property-based tests of the workspace's core invariants, spanning the
//! tensor, core, and analysis crates.

use burst_snn::analysis::burst::{burst_composition, run_lengths};
use burst_snn::analysis::firing::{firing_rate, firing_regularity};
use burst_snn::analysis::isi::intervals;
use burst_snn::core::coding::InputCoding;
use burst_snn::core::convert::percentile;
use burst_snn::core::encoder::InputEncoder;
use burst_snn::core::layer::{SpikingLayer, ThresholdPolicy};
use burst_snn::core::synapse::Synapse;
use burst_snn::core::{NeuronId, SpikeTrainRec};
use burst_snn::tensor::{ops::matmul, Tensor};
use proptest::prelude::*;

fn identity_layer(policy: ThresholdPolicy) -> SpikingLayer {
    SpikingLayer::new(
        Synapse::Dense {
            weight: Tensor::from_vec(vec![1.0], &[1, 1]).expect("shape"),
        },
        None,
        policy,
    )
    .expect("valid layer")
}

proptest! {
    /// Reset-by-subtraction conserves charge for every threshold policy:
    /// total emitted magnitude + residual membrane == total injected.
    #[test]
    fn charge_conservation(
        drives in prop::collection::vec(0.0f32..2.0, 1..200),
        policy_idx in 0usize..3,
    ) {
        let policy = match policy_idx {
            0 => ThresholdPolicy::Fixed { vth: 1.0 },
            1 => ThresholdPolicy::Phase { vth: 8.0, period: 8 },
            _ => ThresholdPolicy::Burst { vth: 0.125, beta: 2.0 },
        };
        let mut layer = identity_layer(policy);
        let mut emitted = 0.0f64;
        let mut injected = 0.0f64;
        for (t, &d) in drives.iter().enumerate() {
            injected += d as f64;
            let out = layer.step(&[d], t as u64).expect("step");
            emitted += out[0] as f64;
        }
        let residual = layer.potentials()[0] as f64;
        prop_assert!(
            (emitted + residual - injected).abs() < 1e-2 * injected.max(1.0),
            "emitted {emitted} + residual {residual} != injected {injected}"
        );
    }

    /// Spike magnitudes are never negative and match the firing
    /// threshold at the time of the spike.
    #[test]
    fn burst_spike_magnitudes_follow_geometric_ladder(
        drives in prop::collection::vec(0.0f32..4.0, 1..100),
    ) {
        let vth = 0.25f32;
        let beta = 2.0f32;
        let mut layer = identity_layer(ThresholdPolicy::Burst { vth, beta });
        let mut consecutive = 0u32;
        for (t, &d) in drives.iter().enumerate() {
            let out = layer.step(&[d], t as u64).expect("step")[0];
            if out > 0.0 {
                let expected = vth * beta.powi(consecutive as i32);
                prop_assert!(
                    (out - expected).abs() < 1e-4,
                    "spike magnitude {out} != g-ladder value {expected}"
                );
                consecutive += 1;
            } else {
                consecutive = 0;
            }
        }
    }

    /// The rate encoder's spike count over T steps approximates x·T.
    #[test]
    fn rate_encoder_counts_track_intensity(x in 0.0f32..1.0) {
        let steps = 256u64;
        let mut enc = InputEncoder::new(InputCoding::Rate, &[x], 8).expect("encoder");
        let mut buf = [0.0f32];
        let mut count = 0u64;
        for t in 0..steps {
            count += enc.step(t, &mut buf) as u64;
        }
        let expected = (x * steps as f32) as i64;
        prop_assert!(
            (count as i64 - expected).abs() <= 1,
            "count {count} vs expected {expected}"
        );
    }

    /// One phase period transmits the k-bit quantization of the pixel.
    #[test]
    fn phase_encoder_period_reconstructs(x in 0.0f32..1.0, k in 2u32..12) {
        let mut enc = InputEncoder::new(InputCoding::Phase, &[x], k).expect("encoder");
        let mut buf = [0.0f32];
        let mut sum = 0.0f32;
        for t in 0..k as u64 {
            enc.step(t, &mut buf);
            sum += buf[0];
        }
        let quantum = 1.0 / (1u64 << k) as f32;
        prop_assert!((sum - x).abs() <= 2.0 * quantum + 1e-5, "sum {sum} vs {x}");
    }

    /// ISIs are consistent: they are positive for strictly increasing
    /// trains and sum to the span.
    #[test]
    fn intervals_sum_to_span(times in prop::collection::btree_set(0u32..10_000, 2..100)) {
        let times: Vec<u32> = times.iter().copied().collect();
        let isis = intervals(&times);
        prop_assert!(isis.iter().all(|&i| i > 0));
        let span: u32 = isis.iter().sum();
        prop_assert_eq!(span, times.last().unwrap() - times.first().unwrap());
    }

    /// Burst run lengths partition the spike count, and the burst
    /// fraction is a valid probability.
    #[test]
    fn burst_stats_are_consistent(times in prop::collection::btree_set(0u32..2_000, 0..200)) {
        let times: Vec<u32> = times.iter().copied().collect();
        let runs = run_lengths(&times);
        prop_assert_eq!(runs.iter().sum::<usize>(), times.len());
        let rec = SpikeTrainRec {
            neuron: NeuronId { layer: 0, index: 0 },
            times,
        };
        let stats = burst_composition(&[rec]);
        let f = stats.burst_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(stats.burst_spikes() <= stats.total_spikes);
    }

    /// Firing rate is in (0, 1] and regularity is non-negative.
    #[test]
    fn firing_stats_ranges(times in prop::collection::btree_set(0u32..5_000, 3..100)) {
        let times: Vec<u32> = times.iter().copied().collect();
        let rate = firing_rate(&times).expect("≥2 spikes");
        prop_assert!(rate > 0.0 && rate <= 1.0, "rate {rate}");
        let kappa = firing_regularity(&times).expect("≥2 ISIs");
        prop_assert!(kappa >= 0.0);
    }

    /// Percentile is bounded by min/max and monotone in p.
    #[test]
    fn percentile_properties(
        values in prop::collection::vec(-100.0f32..100.0, 1..200),
        p1 in 0.0f32..100.0,
        p2 in 0.0f32..100.0,
    ) {
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let v1 = percentile(&values, p1);
        prop_assert!(v1 >= lo && v1 <= hi);
        let (small, big) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, small) <= percentile(&values, big));
    }

    /// Matrix multiplication distributes over addition:
    /// A·(x + y) == A·x + A·y (within float tolerance).
    #[test]
    fn matmul_distributes(
        a_vals in prop::collection::vec(-2.0f32..2.0, 12),
        x_vals in prop::collection::vec(-2.0f32..2.0, 4),
        y_vals in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let a = Tensor::from_vec(a_vals, &[3, 4]).expect("shape");
        let x = Tensor::from_vec(x_vals, &[4, 1]).expect("shape");
        let y = Tensor::from_vec(y_vals, &[4, 1]).expect("shape");
        let lhs = matmul(&a, &x.add(&y).expect("add")).expect("matmul");
        let rhs = matmul(&a, &x)
            .expect("matmul")
            .add(&matmul(&a, &y).expect("matmul"))
            .expect("add");
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(vals in prop::collection::vec(-5.0f32..5.0, 6)) {
        let t = Tensor::from_vec(vals, &[2, 3]).expect("shape");
        let tt = t.transpose2().expect("t").transpose2().expect("tt");
        prop_assert_eq!(t, tt);
    }

    /// Eq. 8 invariant: after every step, the burst function equals
    /// β^(length of the current consecutive-spike run), i.e. it grows
    /// geometrically through a burst and resets to 1 on any silent step.
    #[test]
    fn burst_g_tracks_consecutive_spike_run(
        drives in prop::collection::vec(0.0f32..3.0, 1..150),
    ) {
        let beta = 1.5f32;
        let mut layer = identity_layer(ThresholdPolicy::Burst { vth: 0.25, beta });
        let mut run = 0i32;
        for (t, &d) in drives.iter().enumerate() {
            let fired = layer.step(&[d], t as u64).expect("step")[0] > 0.0;
            run = if fired { run + 1 } else { 0 };
            let expected = beta.powi(run);
            let g = layer.burst_state()[0];
            prop_assert!(
                (g - expected).abs() < 1e-4 * expected,
                "t={t}: g={g} but run length {run} implies {expected}"
            );
        }
    }

    /// β = 1 makes burst coding degenerate exactly into rate coding: the
    /// spike trains and membrane walks coincide step by step.
    #[test]
    fn beta_one_burst_degenerates_to_rate(
        drives in prop::collection::vec(0.0f32..2.0, 1..150),
        vth in 0.05f32..2.0,
    ) {
        let mut rate = identity_layer(ThresholdPolicy::Fixed { vth });
        let mut burst = identity_layer(ThresholdPolicy::Burst { vth, beta: 1.0 });
        for (t, &d) in drives.iter().enumerate() {
            let a = rate.step(&[d], t as u64).expect("step").to_vec();
            let b = burst.step(&[d], t as u64).expect("step").to_vec();
            prop_assert_eq!(a, b, "outputs diverged at t={}", t);
            prop_assert_eq!(
                rate.potentials()[0],
                burst.potentials()[0],
                "membranes diverged at t={}",
                t
            );
        }
    }

    /// Percentile normalization is scale-equivariant: scaling every
    /// activation by α > 0 scales the normalization factor by α, so
    /// normalized weights are invariant to a uniform activation rescale.
    #[test]
    fn percentile_is_scale_equivariant(
        values in prop::collection::vec(0.0f32..100.0, 1..200),
        p in 50.0f32..100.0,
        alpha in 0.1f32..10.0,
    ) {
        let scaled: Vec<f32> = values.iter().map(|v| v * alpha).collect();
        let direct = percentile(&scaled, p);
        let derived = alpha * percentile(&values, p);
        prop_assert!(
            (direct - derived).abs() <= 1e-3 * derived.abs().max(1.0),
            "percentile(αv, {p}) = {direct} but α·percentile(v, {p}) = {derived}"
        );
    }
}
