//! End-to-end integration tests spanning every crate in the workspace:
//! dataset generation → DNN training → DNN→SNN conversion → clock-driven
//! simulation → spike-train analysis.

use burst_snn::analysis::{burst_composition, population_firing, IsiHistogram};
use burst_snn::core::coding::{CodingScheme, HiddenCoding, InputCoding};
use burst_snn::core::convert::{convert, ConversionConfig, Normalization};
use burst_snn::core::simulator::{evaluate_dataset, record_spike_trains, EvalConfig};
use burst_snn::data::SynthSpec;
use burst_snn::dnn::models;
use burst_snn::dnn::train::{evaluate, TrainConfig, Trainer};

struct Pipeline {
    dnn: burst_snn::dnn::Sequential,
    train: burst_snn::data::ImageDataset,
    test: burst_snn::data::ImageDataset,
    dnn_accuracy: f64,
}

fn trained_pipeline() -> Pipeline {
    let (train, test) = SynthSpec::digits().with_counts(40, 10).generate();
    let mut dnn = models::cnn_digits(1, 12, 12, 10, 3).expect("model");
    let report = Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 32,
        lr: 1.5e-3,
        ..TrainConfig::default()
    })
    .fit(&mut dnn, &train, &test)
    .expect("training");
    Pipeline {
        dnn_accuracy: report.test_accuracy,
        dnn,
        train,
        test,
    }
}

fn convert_with(p: &mut Pipeline, scheme: CodingScheme) -> burst_snn::core::SpikingNetwork {
    let (norm, _) = p.train.batch(&(0..40).collect::<Vec<_>>());
    convert(
        &mut p.dnn,
        &norm,
        &ConversionConfig::new(scheme).with_vth(0.125),
    )
    .expect("conversion")
}

#[test]
fn dnn_trains_above_chance() {
    let p = trained_pipeline();
    assert!(
        p.dnn_accuracy > 0.5,
        "DNN accuracy {} too low for a meaningful conversion test",
        p.dnn_accuracy
    );
}

#[test]
fn every_scheme_approaches_dnn_accuracy() {
    let mut p = trained_pipeline();
    let dnn_acc = p.dnn_accuracy;
    for scheme in CodingScheme::all() {
        // Phase input operates per-period (k× slower drive), rate input
        // needs integration time: give slower schemes a longer horizon.
        let steps = match scheme.input {
            InputCoding::Real => 160,
            InputCoding::Rate => 256,
            InputCoding::Phase | InputCoding::Ttfs => 384,
        };
        let mut snn = convert_with(&mut p, scheme);
        let eval = evaluate_dataset(
            &mut snn,
            &p.test,
            &EvalConfig::new(scheme, steps).with_max_images(40),
        )
        .expect("evaluation");
        assert!(
            eval.final_accuracy() >= dnn_acc - 0.10,
            "{scheme}: SNN {:.3} vs DNN {:.3}",
            eval.final_accuracy(),
            dnn_acc
        );
    }
}

#[test]
fn snn_agrees_with_dnn_predictions() {
    let mut p = trained_pipeline();
    let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
    let mut snn = convert_with(&mut p, scheme);
    let n = 30usize;
    let mut agree = 0usize;
    for i in 0..n {
        let (batch, _) = p.test.batch(&[i]);
        let dnn_pred = p.dnn.predict(&batch).expect("dnn predict")[0];
        let result = burst_snn::core::simulator::infer_image(
            &mut snn,
            p.test.image(i),
            &EvalConfig::new(scheme, 200),
        )
        .expect("snn inference");
        if result.predictions[0] == dnn_pred {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / n as f64 >= 0.85,
        "SNN agrees with DNN on only {agree}/{n} images"
    );
}

#[test]
fn burst_converges_faster_than_rate_hidden_under_phase_input() {
    // The paper's headline: burst hidden coding transmits bursty phase
    // packets quickly; rate hidden coding is drive-rate limited.
    let mut p = trained_pipeline();
    let target = p.dnn_accuracy - 0.05;
    let mut latency = std::collections::HashMap::new();
    for hidden in [HiddenCoding::Rate, HiddenCoding::Burst] {
        let scheme = CodingScheme::new(InputCoding::Phase, hidden);
        let mut snn = convert_with(&mut p, scheme);
        let eval = evaluate_dataset(
            &mut snn,
            &p.test,
            &EvalConfig::new(scheme, 384)
                .with_checkpoint_every(16)
                .with_max_images(40),
        )
        .expect("evaluation");
        latency.insert(
            hidden,
            eval.latency_to(target).map_or(usize::MAX, |(t, _)| t),
        );
    }
    assert!(
        latency[&HiddenCoding::Burst] <= latency[&HiddenCoding::Rate],
        "burst latency {:?} should not exceed rate latency {:?}",
        latency[&HiddenCoding::Burst],
        latency[&HiddenCoding::Rate]
    );
}

#[test]
fn burst_coding_produces_burst_spikes_rate_does_not() {
    let mut p = trained_pipeline();
    let mut fractions = Vec::new();
    for hidden in [HiddenCoding::Rate, HiddenCoding::Burst] {
        let scheme = CodingScheme::new(InputCoding::Phase, hidden);
        let mut snn = convert_with(&mut p, scheme);
        let trains =
            record_spike_trains(&mut snn, p.test.image(0), scheme, 256, 0.5, 9).expect("recording");
        let hidden_trains: Vec<_> = trains.into_iter().filter(|t| t.neuron.layer > 0).collect();
        fractions.push(burst_composition(&hidden_trains).burst_fraction());
    }
    // Burst coding must produce a clearly higher consecutive-spike
    // fraction than a fixed unit threshold.
    assert!(
        fractions[1] > fractions[0],
        "burst fraction {:.3} should exceed rate fraction {:.3}",
        fractions[1],
        fractions[0]
    );
}

#[test]
fn smaller_vth_means_more_spikes_and_more_bursts() {
    let mut p = trained_pipeline();
    let scheme = CodingScheme::recommended();
    let (norm, _) = p.train.batch(&(0..40).collect::<Vec<_>>());
    let mut prev_spikes = 0u64;
    let mut prev_burst_frac = -1.0f64;
    for vth in [0.5f32, 0.125, 0.03125] {
        let cfg = ConversionConfig::new(scheme).with_vth(vth);
        let mut snn = convert(&mut p.dnn, &norm, &cfg).expect("conversion");
        let trains =
            record_spike_trains(&mut snn, p.test.image(0), scheme, 256, 1.0, 5).expect("recording");
        let hidden_trains: Vec<_> = trains.into_iter().filter(|t| t.neuron.layer > 0).collect();
        let stats = burst_composition(&hidden_trains);
        assert!(
            stats.total_spikes > prev_spikes,
            "vth={vth}: spikes {} should exceed {}",
            stats.total_spikes,
            prev_spikes
        );
        assert!(
            stats.burst_fraction() >= prev_burst_frac,
            "vth={vth}: burst fraction should not decrease"
        );
        prev_spikes = stats.total_spikes;
        prev_burst_frac = stats.burst_fraction();
    }
}

#[test]
fn isi_histogram_of_burst_is_short_isi_heavy() {
    let mut p = trained_pipeline();
    let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Burst);
    let mut snn = convert_with(&mut p, scheme);
    let trains =
        record_spike_trains(&mut snn, p.test.image(1), scheme, 256, 0.5, 3).expect("recording");
    let hidden_trains: Vec<_> = trains.into_iter().filter(|t| t.neuron.layer > 0).collect();
    let hist = IsiHistogram::from_trains(&hidden_trains, 16);
    assert!(
        hist.short_isi_fraction(2) > 0.5,
        "burst coding short-ISI fraction {:.3} should dominate",
        hist.short_isi_fraction(2)
    );
}

#[test]
fn phase_hidden_fires_faster_than_rate_hidden() {
    // Fig. 5 cluster structure: phase hidden → high firing rate.
    let mut p = trained_pipeline();
    let mut rates = Vec::new();
    for hidden in [HiddenCoding::Rate, HiddenCoding::Phase] {
        let scheme = CodingScheme::new(InputCoding::Real, hidden);
        let mut snn = convert_with(&mut p, scheme);
        let trains =
            record_spike_trains(&mut snn, p.test.image(2), scheme, 512, 0.3, 1).expect("recording");
        let hidden_trains: Vec<_> = trains.into_iter().filter(|t| t.neuron.layer > 0).collect();
        rates.push(population_firing(&hidden_trains).mean_log_rate);
    }
    assert!(
        rates[1] > rates[0],
        "phase <log λ> {:.3} should exceed rate <log λ> {:.3}",
        rates[1],
        rates[0]
    );
}

#[test]
fn normalization_methods_both_convert_successfully() {
    let mut p = trained_pipeline();
    let scheme = CodingScheme::new(InputCoding::Real, HiddenCoding::Rate);
    let (norm, _) = p.train.batch(&(0..40).collect::<Vec<_>>());
    for method in [Normalization::Max, Normalization::Percentile(99.9)] {
        let cfg = ConversionConfig::new(scheme).with_normalization(method);
        let mut snn = convert(&mut p.dnn, &norm, &cfg).expect("conversion");
        let eval = evaluate_dataset(
            &mut snn,
            &p.test,
            &EvalConfig::new(scheme, 160).with_max_images(30),
        )
        .expect("evaluation");
        assert!(
            eval.final_accuracy() >= p.dnn_accuracy - 0.12,
            "{method:?}: accuracy {:.3}",
            eval.final_accuracy()
        );
    }
}

#[test]
fn dnn_evaluation_is_stable_after_conversion() {
    // Conversion must not mutate the source DNN's parameters.
    let mut p = trained_pipeline();
    let before = evaluate(&mut p.dnn, &p.test, 32).expect("eval");
    let _ = convert_with(&mut p, CodingScheme::recommended());
    let after = evaluate(&mut p.dnn, &p.test, 32).expect("eval");
    assert_eq!(before, after);
}

#[test]
fn parallel_evaluation_matches_sequential_for_all_thread_counts() {
    // The parallel evaluator must be bit-identical to the sequential one
    // regardless of how the image range is partitioned.
    let mut p = trained_pipeline();
    let scheme = CodingScheme::recommended();
    let snn = convert_with(&mut p, scheme);
    let cfg = EvalConfig::new(scheme, 96)
        .with_checkpoint_every(32)
        .with_max_images(24);
    let mut seq = snn.clone();
    let sequential = evaluate_dataset(&mut seq, &p.test, &cfg).expect("sequential");
    for threads in [1, 2, 3, 8] {
        let parallel =
            burst_snn::core::simulator::evaluate_dataset_parallel(&snn, &p.test, &cfg, threads)
                .expect("parallel");
        assert_eq!(
            sequential.accuracy_at, parallel.accuracy_at,
            "accuracy curve diverged at {threads} threads"
        );
        assert_eq!(
            sequential.mean_spikes_at, parallel.mean_spikes_at,
            "spike curve diverged at {threads} threads"
        );
        assert_eq!(
            sequential.layer_counts, parallel.layer_counts,
            "layer counts diverged at {threads} threads"
        );
    }
}
